package smt

import "math/big"

// simplex is a general simplex solver in the style of Dutertre and de Moura
// ("A Fast Linear-Arithmetic Solver for DPLL(T)"): variables carry optional
// lower/upper bounds, slack variables are defined by tableau rows over the
// structural variables, and feasibility is restored by pivoting with
// Bland's rule. Arithmetic uses qnum, a rational with an int64 fast path
// that promotes to big.Rat on overflow.
//
// Storage is dense and pointer-free: the tableau is one flat slice of qcell
// (num/den pairs with promoted big.Rat values boxed in a side table) indexed
// by row*stride+column, and bounds/values are flat arrays. The consolidation
// workload produces small tableaux (tens of variables), where dense scans
// beat hash maps by a wide margin and pointer-free rows cost the garbage
// collector nothing. The single backing array makes clone one allocation
// plus a memmove, and adding a slack variable's column is free while the
// width stays under the stride — both matter because branch-and-bound and
// the Nelson–Oppen probes clone the tableau at every node. The pivoting
// rule, the pivot budget and the exact rational arithmetic are unchanged, so
// the solver visits exactly the same bases as the row-per-slice
// representation.
type simplex struct {
	n          int // total variables (structural + slack)
	structural int // ids < structural are integer-constrained structural vars
	// rowOf[x] is the tableau row owned by basic variable x, -1 when x is
	// nonbasic. rowVar is the inverse: the basic variable of each row, and
	// its length is the row count.
	rowOf  []int32
	rowVar []int32
	// tab holds the tableau cells: row ri occupies
	// tab[ri*stride : ri*stride+n], and cells in columns [n, stride) are
	// kept at cellZero so growing n claims them without touching memory.
	// tab[ri*stride+y] is the coefficient of variable y in the defining row
	// of basic variable rowVar[ri]. A row never carries its own basic
	// variable (that coefficient is implicitly zero).
	tab    []qcell
	stride int
	// bigTab boxes the rare coefficients that overflow int64; a qcell with
	// den == 0 indexes into it. Entries are immutable once stored.
	bigTab   []*big.Rat
	lower    []qnum
	upper    []qnum
	hasLower []bool
	hasUpper []bool
	beta     []qnum
	// scratch is a per-instance row buffer for pivoting; never cloned.
	scratch []qcell
	// pivots is shared across clones so that the whole branch-and-bound
	// tree of one theory check draws from a single budget; per-clone
	// budgets would multiply exponentially.
	pivots    *int
	maxPivots int
}

// qcell is a pointer-free tableau cell. den > 0 holds the value num/den
// inline; den == 0 marks an overflow cell whose big.Rat lives in the
// simplex's bigTab at index num. The all-zero qcell is never materialised:
// every cell is written explicitly, zero as cellZero.
type qcell struct{ num, den int64 }

var cellZero = qcell{num: 0, den: 1}

// isZero reports whether the cell holds 0; big.Rat cells are never zero
// (qnorm only promotes on overflow, and 0 never overflows).
func (c qcell) isZero() bool { return c.den != 0 && c.num == 0 }

func (s *simplex) loadCell(c qcell) qnum {
	if c.den != 0 {
		return qnum{num: c.num, den: c.den}
	}
	return qnum{big: s.bigTab[c.num]}
}

func (s *simplex) storeCell(q qnum) qcell {
	if q.big == nil {
		return qcell{num: q.num, den: q.den}
	}
	s.bigTab = append(s.bigTab, q.big)
	return qcell{num: int64(len(s.bigTab) - 1), den: 0}
}

// row returns the defining row of tableau row ri, n cells wide.
func (s *simplex) row(ri int32) []qcell {
	base := int(ri) * s.stride
	return s.tab[base : base+s.n]
}

// sterm is one addend of a slack definition: coefficient c on variable x.
type sterm struct {
	x int
	c qnum
}

// newSimplex builds an empty tableau over the given structural variables.
// slackHint is the expected number of addSlack calls: the stride and the
// backing array are sized for it upfront, so a well-hinted instance never
// repacks. The hint only affects capacity, never values.
func newSimplex(structural, maxPivots, slackHint int) *simplex {
	// +2 keeps one probe slack per clone within stride (Nelson–Oppen adds a
	// difference slack to each probe clone).
	stride := structural + slackHint + 2
	s := &simplex{
		n:          structural,
		structural: structural,
		stride:     stride,
		rowOf:      make([]int32, structural, structural+slackHint+2),
		tab:        make([]qcell, 0, (slackHint+2)*stride),
		lower:      make([]qnum, structural, structural+slackHint+2),
		upper:      make([]qnum, structural, structural+slackHint+2),
		hasLower:   make([]bool, structural, structural+slackHint+2),
		hasUpper:   make([]bool, structural, structural+slackHint+2),
		beta:       make([]qnum, structural, structural+slackHint+2),
		pivots:     new(int),
		maxPivots:  maxPivots,
	}
	for i := 0; i < structural; i++ {
		s.rowOf[i] = -1
		s.beta[i] = qZero
	}
	return s
}

func (s *simplex) val(x int) qnum { return s.beta[x] }

// widen repacks the tableau with a larger stride once the variable count
// outgrows the current one. Cells past the old stride start as cellZero,
// preserving the [n, stride) zero-fill invariant.
func (s *simplex) widen(newStride int) {
	old := s.tab
	os := s.stride
	nrows := len(s.rowVar)
	s.tab = make([]qcell, nrows*newStride, (nrows+8)*newStride)
	for ri := 0; ri < nrows; ri++ {
		copy(s.tab[ri*newStride:ri*newStride+os], old[ri*os:(ri+1)*os])
		for z := ri*newStride + os; z < (ri+1)*newStride; z++ {
			s.tab[z] = cellZero
		}
	}
	s.stride = newStride
}

// addSlack introduces a slack variable defined as the given combination of
// existing variables (no constant part) and returns its id. The current
// assignment is extended consistently.
func (s *simplex) addSlack(combo []sterm) int {
	id := s.n
	s.n++
	s.rowOf = append(s.rowOf, -1)
	s.lower = append(s.lower, qnum{})
	s.upper = append(s.upper, qnum{})
	s.hasLower = append(s.hasLower, false)
	s.hasUpper = append(s.hasUpper, false)
	if s.n > s.stride {
		// Grow by a fixed step rather than doubling: repacks stay cheap on
		// these small tableaux, and a tight stride keeps every clone's
		// memmove close to the live cell count.
		s.widen(s.n + 16)
	}
	// Existing rows gain the new variable's column for free: their cells in
	// [n-1, stride) are already cellZero. Append one fresh zero row, growing
	// the backing array with several rows of headroom at a time.
	base := len(s.tab)
	if cap(s.tab) < base+s.stride {
		ncap := 2 * cap(s.tab)
		if ncap < base+s.stride {
			ncap = base + s.stride
		}
		nt := make([]qcell, base, ncap)
		copy(nt, s.tab)
		s.tab = nt
	}
	s.tab = s.tab[:base+s.stride]
	newRow := s.tab[base:]
	for i := range newRow {
		newRow[i] = cellZero
	}
	row := s.tab[base : base+s.n]
	v := qZero
	for _, t := range combo {
		if t.c.qSign() == 0 {
			continue
		}
		if xri := s.rowOf[t.x]; xri >= 0 {
			// Substitute the basic variable by its row.
			xrow := s.row(xri)
			for y, cy := range xrow {
				if cy.isZero() {
					continue
				}
				row[y] = s.storeCell(qAdd(s.loadCell(row[y]), qMul(t.c, s.loadCell(cy))))
			}
		} else {
			row[t.x] = s.storeCell(qAdd(s.loadCell(row[t.x]), t.c))
		}
		v = qAdd(v, qMul(t.c, s.beta[t.x]))
	}
	ri := int32(len(s.rowVar))
	s.rowVar = append(s.rowVar, int32(id))
	s.rowOf[id] = ri
	s.beta = append(s.beta, v)
	return id
}

// update changes the value of nonbasic variable x to v, adjusting all basic
// variables.
func (s *simplex) update(x int, v qnum) {
	delta := qSub(v, s.beta[x])
	for ri := range s.rowVar {
		if c := s.tab[ri*s.stride+x]; !c.isZero() {
			b := s.rowVar[ri]
			s.beta[b] = qAdd(s.beta[b], qMul(s.loadCell(c), delta))
		}
	}
	s.beta[x] = v
}

// assertLower tightens the lower bound of x; reports false on an immediate
// bound conflict.
func (s *simplex) assertLower(x int, c qnum) bool {
	if s.hasLower[x] && qCmp(c, s.lower[x]) <= 0 {
		return true
	}
	if s.hasUpper[x] && qCmp(c, s.upper[x]) > 0 {
		return false
	}
	s.lower[x] = c
	s.hasLower[x] = true
	if s.rowOf[x] < 0 && qCmp(s.beta[x], c) < 0 {
		s.update(x, c)
	}
	return true
}

// assertUpper tightens the upper bound of x; reports false on an immediate
// bound conflict.
func (s *simplex) assertUpper(x int, c qnum) bool {
	if s.hasUpper[x] && qCmp(c, s.upper[x]) >= 0 {
		return true
	}
	if s.hasLower[x] && qCmp(c, s.lower[x]) < 0 {
		return false
	}
	s.upper[x] = c
	s.hasUpper[x] = true
	if s.rowOf[x] < 0 && qCmp(s.beta[x], c) > 0 {
		s.update(x, c)
	}
	return true
}

// pivot exchanges basic x with nonbasic y.
func (s *simplex) pivot(x, y int) {
	xri := s.rowOf[x]
	xrow := s.row(xri)
	a := s.loadCell(xrow[y])
	// y = (x - Σ_{z≠y} xrow[z]·z) / a, built in scratch then copied over the
	// old row in place so pivoting never allocates.
	if cap(s.scratch) < s.n {
		s.scratch = make([]qcell, s.n, s.n+16)
	}
	yrow := s.scratch[:s.n]
	for z, cz := range xrow {
		if z == y || cz.isZero() {
			yrow[z] = cellZero
			continue
		}
		yrow[z] = s.storeCell(qNeg(qDiv(s.loadCell(cz), a)))
	}
	yrow[x] = s.storeCell(qDiv(qOne, a))
	yrow[y] = cellZero
	copy(xrow, yrow)
	s.rowVar[xri] = int32(y)
	s.rowOf[y] = xri
	s.rowOf[x] = -1
	// Substitute y in all other rows.
	for ri := range s.rowVar {
		if int32(ri) == xri {
			continue
		}
		row := s.row(int32(ri))
		cyc := row[y]
		if cyc.isZero() {
			continue
		}
		cy := s.loadCell(cyc)
		row[y] = cellZero
		for z, cz := range yrow {
			if cz.isZero() {
				continue
			}
			row[z] = s.storeCell(qAdd(s.loadCell(row[z]), qMul(cy, s.loadCell(cz))))
		}
	}
}

// pivotAndUpdate makes basic x take value v by pivoting with nonbasic y.
func (s *simplex) pivotAndUpdate(x, y int, v qnum) {
	xri := s.rowOf[x]
	a := s.loadCell(s.tab[int(xri)*s.stride+y])
	theta := qDiv(qSub(v, s.beta[x]), a)
	s.beta[x] = v
	s.beta[y] = qAdd(s.beta[y], theta)
	for ri := range s.rowVar {
		if int32(ri) == xri {
			continue
		}
		if c := s.tab[ri*s.stride+y]; !c.isZero() {
			b := s.rowVar[ri]
			s.beta[b] = qAdd(s.beta[b], qMul(s.loadCell(c), theta))
		}
	}
	s.pivot(x, y)
}

// check restores feasibility; it reports false when the constraints are
// infeasible and true when a satisfying rational assignment was found. A
// pivot-budget overrun returns true together with budgetExceeded, which
// callers must treat as "unknown".
func (s *simplex) check() (feasible, budgetExceeded bool) {
	for {
		*s.pivots++
		if *s.pivots > s.maxPivots {
			return true, true
		}
		// Bland's rule: smallest violated basic variable.
		x := -1
		var target qnum
		var below bool
		for b := 0; b < s.n; b++ {
			if s.rowOf[b] < 0 {
				continue
			}
			if s.hasLower[b] && qCmp(s.beta[b], s.lower[b]) < 0 {
				x, target, below = b, s.lower[b], true
				break
			}
			if s.hasUpper[b] && qCmp(s.beta[b], s.upper[b]) > 0 {
				x, target, below = b, s.upper[b], false
				break
			}
		}
		if x < 0 {
			return true, false
		}
		row := s.row(s.rowOf[x])
		y := -1
		for cand := 0; cand < s.n; cand++ {
			cc := row[cand]
			if cc.isZero() {
				continue
			}
			sign := s.loadCell(cc).qSign()
			if below {
				// Need to increase x.
				if sign > 0 {
					if !s.hasUpper[cand] || qCmp(s.beta[cand], s.upper[cand]) < 0 {
						y = cand
						break
					}
				} else {
					if !s.hasLower[cand] || qCmp(s.beta[cand], s.lower[cand]) > 0 {
						y = cand
						break
					}
				}
			} else {
				// Need to decrease x.
				if sign > 0 {
					if !s.hasLower[cand] || qCmp(s.beta[cand], s.lower[cand]) > 0 {
						y = cand
						break
					}
				} else {
					if !s.hasUpper[cand] || qCmp(s.beta[cand], s.upper[cand]) < 0 {
						y = cand
						break
					}
				}
			}
		}
		if y < 0 {
			return false, false
		}
		s.pivotAndUpdate(x, y, target)
	}
}

// clone copies the solver state; cells are plain values and big.Rat entries
// are immutable, so every slice copies by memmove — the tableau in
// particular is a single allocation. The copies are independent: a clone
// growing its tableau appends to (or repacks) its own backing array and its
// own bigTab, never the parent's.
func (s *simplex) clone() *simplex {
	// Pack the per-variable slices into three arena allocations (int32s,
	// qnums, bools); full slice expressions cap each view so a clone growing
	// one of them reallocates that slice alone instead of clobbering its
	// arena neighbours.
	// Each section gets one spare slot (and the tableau one spare row) so a
	// probe clone's single addSlack call grows fully in place.
	no, nv := len(s.rowOf), len(s.rowVar)
	ints := make([]int32, no+nv+2)
	copy(ints, s.rowOf)
	copy(ints[no+1:], s.rowVar)
	nl, nu, nb := len(s.lower), len(s.upper), len(s.beta)
	qs := make([]qnum, nl+nu+nb+3)
	copy(qs, s.lower)
	copy(qs[nl+1:], s.upper)
	copy(qs[nl+nu+2:], s.beta)
	nh, nk := len(s.hasLower), len(s.hasUpper)
	bs := make([]bool, nh+nk+2)
	copy(bs, s.hasLower)
	copy(bs[nh+1:], s.hasUpper)
	nt := make([]qcell, len(s.tab), len(s.tab)+s.stride)
	copy(nt, s.tab)
	return &simplex{
		n:          s.n,
		structural: s.structural,
		rowOf:      ints[0 : no : no+1],
		rowVar:     ints[no+1 : no+1+nv : no+nv+2],
		tab:        nt,
		stride:     s.stride,
		bigTab:     append([]*big.Rat(nil), s.bigTab...),
		lower:      qs[0 : nl : nl+1],
		upper:      qs[nl+1 : nl+1+nu : nl+nu+2],
		hasLower:   bs[0 : nh : nh+1],
		hasUpper:   bs[nh+1 : nh+1+nk : nh+nk+2],
		beta:       qs[nl+nu+2 : nl+nu+2+nb : nl+nu+nb+3],
		pivots:     s.pivots,
		maxPivots:  s.maxPivots,
	}
}

// fractionalStructural returns a structural variable whose current value is
// not an integer, or -1 when the assignment is integral on structural vars.
func (s *simplex) fractionalStructural() int {
	for x := 0; x < s.structural; x++ {
		if !s.beta[x].qIsInt() {
			return x
		}
	}
	return -1
}
