package smt

// simplex is a general simplex solver in the style of Dutertre and de Moura
// ("A Fast Linear-Arithmetic Solver for DPLL(T)"): variables carry optional
// lower/upper bounds, slack variables are defined by tableau rows over the
// structural variables, and feasibility is restored by pivoting with
// Bland's rule. Arithmetic uses qnum, a rational with an int64 fast path
// that promotes to big.Rat on overflow.
type simplex struct {
	n          int // total variables (structural + slack)
	structural int // ids < structural are integer-constrained structural vars
	rows       map[int]map[int]qnum
	lower      map[int]qnum
	upper      map[int]qnum
	hasLower   map[int]bool
	hasUpper   map[int]bool
	beta       map[int]qnum
	// pivots is shared across clones so that the whole branch-and-bound
	// tree of one theory check draws from a single budget; per-clone
	// budgets would multiply exponentially.
	pivots    *int
	maxPivots int
}

func newSimplex(structural, maxPivots int) *simplex {
	return &simplex{
		n:          structural,
		structural: structural,
		rows:       map[int]map[int]qnum{},
		lower:      map[int]qnum{},
		upper:      map[int]qnum{},
		hasLower:   map[int]bool{},
		hasUpper:   map[int]bool{},
		beta:       map[int]qnum{},
		pivots:     new(int),
		maxPivots:  maxPivots,
	}
}

func (s *simplex) val(x int) qnum {
	if v, ok := s.beta[x]; ok {
		return v
	}
	return qZero
}

// addSlack introduces a slack variable defined as the given combination of
// existing variables (no constant part) and returns its id. The current
// assignment is extended consistently.
func (s *simplex) addSlack(combo map[int]qnum) int {
	id := s.n
	s.n++
	row := map[int]qnum{}
	v := qZero
	for x, c := range combo {
		if c.qSign() == 0 {
			continue
		}
		if xrow, basic := s.rows[x]; basic {
			// Substitute the basic variable by its row.
			for y, cy := range xrow {
				acc := qMul(c, cy)
				if old, ok := row[y]; ok {
					acc = qAdd(old, acc)
				}
				if acc.qSign() == 0 {
					delete(row, y)
				} else {
					row[y] = acc
				}
			}
		} else {
			acc := c
			if old, ok := row[x]; ok {
				acc = qAdd(old, c)
			}
			if acc.qSign() == 0 {
				delete(row, x)
			} else {
				row[x] = acc
			}
		}
		v = qAdd(v, qMul(c, s.val(x)))
	}
	s.rows[id] = row
	s.beta[id] = v
	return id
}

// update changes the value of nonbasic variable x to v, adjusting all basic
// variables.
func (s *simplex) update(x int, v qnum) {
	delta := qSub(v, s.val(x))
	for b, row := range s.rows {
		if c, ok := row[x]; ok {
			s.beta[b] = qAdd(s.val(b), qMul(c, delta))
		}
	}
	s.beta[x] = v
}

// assertLower tightens the lower bound of x; reports false on an immediate
// bound conflict.
func (s *simplex) assertLower(x int, c qnum) bool {
	if s.hasLower[x] && qCmp(c, s.lower[x]) <= 0 {
		return true
	}
	if s.hasUpper[x] && qCmp(c, s.upper[x]) > 0 {
		return false
	}
	s.lower[x] = c
	s.hasLower[x] = true
	if _, basic := s.rows[x]; !basic && qCmp(s.val(x), c) < 0 {
		s.update(x, c)
	}
	return true
}

// assertUpper tightens the upper bound of x; reports false on an immediate
// bound conflict.
func (s *simplex) assertUpper(x int, c qnum) bool {
	if s.hasUpper[x] && qCmp(c, s.upper[x]) >= 0 {
		return true
	}
	if s.hasLower[x] && qCmp(c, s.lower[x]) < 0 {
		return false
	}
	s.upper[x] = c
	s.hasUpper[x] = true
	if _, basic := s.rows[x]; !basic && qCmp(s.val(x), c) > 0 {
		s.update(x, c)
	}
	return true
}

// pivot exchanges basic x with nonbasic y.
func (s *simplex) pivot(x, y int) {
	xrow := s.rows[x]
	a := xrow[y]
	delete(s.rows, x)
	// y = (x - Σ_{z≠y} xrow[z]·z) / a
	yrow := map[int]qnum{x: qDiv(qOne, a)}
	for z, cz := range xrow {
		if z == y {
			continue
		}
		yrow[z] = qNeg(qDiv(cz, a))
	}
	s.rows[y] = yrow
	// Substitute y in all other rows.
	for b, row := range s.rows {
		if b == y {
			continue
		}
		cy, ok := row[y]
		if !ok {
			continue
		}
		delete(row, y)
		for z, cz := range yrow {
			acc := qMul(cy, cz)
			if old, ok := row[z]; ok {
				acc = qAdd(old, acc)
			}
			if acc.qSign() == 0 {
				delete(row, z)
			} else {
				row[z] = acc
			}
		}
	}
}

// pivotAndUpdate makes basic x take value v by pivoting with nonbasic y.
func (s *simplex) pivotAndUpdate(x, y int, v qnum) {
	a := s.rows[x][y]
	theta := qDiv(qSub(v, s.val(x)), a)
	s.beta[x] = v
	s.beta[y] = qAdd(s.val(y), theta)
	for b, row := range s.rows {
		if b == x {
			continue
		}
		if c, ok := row[y]; ok {
			s.beta[b] = qAdd(s.val(b), qMul(c, theta))
		}
	}
	s.pivot(x, y)
}

// check restores feasibility; it reports false when the constraints are
// infeasible and true when a satisfying rational assignment was found. A
// pivot-budget overrun returns true together with budgetExceeded, which
// callers must treat as "unknown".
func (s *simplex) check() (feasible, budgetExceeded bool) {
	for {
		*s.pivots++
		if *s.pivots > s.maxPivots {
			return true, true
		}
		// Bland's rule: smallest violated basic variable.
		x := -1
		var target qnum
		var below bool
		for b := 0; b < s.n; b++ {
			if _, basic := s.rows[b]; !basic {
				continue
			}
			if s.hasLower[b] && qCmp(s.val(b), s.lower[b]) < 0 {
				x, target, below = b, s.lower[b], true
				break
			}
			if s.hasUpper[b] && qCmp(s.val(b), s.upper[b]) > 0 {
				x, target, below = b, s.upper[b], false
				break
			}
		}
		if x < 0 {
			return true, false
		}
		row := s.rows[x]
		y := -1
		for cand := 0; cand < s.n; cand++ {
			c, ok := row[cand]
			if !ok {
				continue
			}
			sign := c.qSign()
			if below {
				// Need to increase x.
				if sign > 0 {
					if !s.hasUpper[cand] || qCmp(s.val(cand), s.upper[cand]) < 0 {
						y = cand
						break
					}
				} else if sign < 0 {
					if !s.hasLower[cand] || qCmp(s.val(cand), s.lower[cand]) > 0 {
						y = cand
						break
					}
				}
			} else {
				// Need to decrease x.
				if sign > 0 {
					if !s.hasLower[cand] || qCmp(s.val(cand), s.lower[cand]) > 0 {
						y = cand
						break
					}
				} else if sign < 0 {
					if !s.hasUpper[cand] || qCmp(s.val(cand), s.upper[cand]) < 0 {
						y = cand
						break
					}
				}
			}
		}
		if y < 0 {
			return false, false
		}
		s.pivotAndUpdate(x, y, target)
	}
}

// clone copies the solver state; qnum values are immutable.
func (s *simplex) clone() *simplex {
	out := &simplex{
		n:          s.n,
		structural: s.structural,
		rows:       make(map[int]map[int]qnum, len(s.rows)),
		lower:      make(map[int]qnum, len(s.lower)),
		upper:      make(map[int]qnum, len(s.upper)),
		hasLower:   make(map[int]bool, len(s.hasLower)),
		hasUpper:   make(map[int]bool, len(s.hasUpper)),
		beta:       make(map[int]qnum, len(s.beta)),
		pivots:     s.pivots,
		maxPivots:  s.maxPivots,
	}
	for b, row := range s.rows {
		r := make(map[int]qnum, len(row))
		for k, v := range row {
			r[k] = v
		}
		out.rows[b] = r
	}
	for k, v := range s.lower {
		out.lower[k] = v
	}
	for k, v := range s.upper {
		out.upper[k] = v
	}
	for k, v := range s.hasLower {
		out.hasLower[k] = v
	}
	for k, v := range s.hasUpper {
		out.hasUpper[k] = v
	}
	for k, v := range s.beta {
		out.beta[k] = v
	}
	return out
}

// fractionalStructural returns a structural variable whose current value is
// not an integer, or -1 when the assignment is integral on structural vars.
func (s *simplex) fractionalStructural() int {
	for x := 0; x < s.structural; x++ {
		if !s.val(x).qIsInt() {
			return x
		}
	}
	return -1
}
