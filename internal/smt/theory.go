package smt

import (
	"sort"
	"strconv"

	"consolidation/internal/logic"
)

// theoryLit is an atom with a polarity, the unit the combined theory solver
// reasons about. The atom's sides are interned term nodes in whichever
// logic.Interner produced the literal (the solver's or a Context's); the
// pairing arena is passed alongside to checkTheory.
type theoryLit struct {
	l, r logic.NodeID
	pred logic.Pred
	pos  bool
}

// litOfAtomNode builds the theory literal for an interned KAtom node.
func litOfAtomNode(in *logic.Interner, atom logic.NodeID, pos bool) theoryLit {
	kids := in.Kids(atom)
	return theoryLit{l: kids[0], r: kids[1], pred: in.PredOf(atom), pos: pos}
}

// theoryStatus is the outcome of a conjunction check.
type theoryStatus int

const (
	theoryUnsat theoryStatus = iota
	theorySat
	theoryUnknown
)

// theoryConfig bounds the effort of a single conjunction check.
type theoryConfig struct {
	maxPivots   int
	branchDepth int
	noEqRounds  int // Nelson–Oppen LIA→CC equality propagation rounds
	noEqProbes  int // budget of simplex probes across all rounds
}

func defaultTheoryConfig() theoryConfig {
	return theoryConfig{maxPivots: 2500, branchDepth: 10, noEqRounds: 4, noEqProbes: 64}
}

// checkTheory decides satisfiability of a conjunction of literals in
// QF_UFLIA; src is the arena the literals' term NodeIDs live in. It is
// sound for both answers; theoryUnknown is returned when a resource cap
// was hit, and callers must treat it as "possibly sat".
func checkTheory(src *logic.Interner, lits []theoryLit, cfg theoryConfig) theoryStatus {
	in := newInterner()

	type liaConstraint struct {
		l     lin
		upper bool // l ≤ 0 when upper, l = 0 when eq
		eq    bool
	}
	var constraints []liaConstraint
	var diseqLins []lin
	type ccEq struct{ a, b int }
	var ccEqs, ccNeqs []ccEq

	// Intern literal sides and derive arithmetic constraints. Comparisons
	// normalise to "lin ≤ 0" over integers; strict < becomes ≤ -1.
	for _, lt := range lits {
		l := in.internNode(src, lt.l)
		r := in.internNode(src, lt.r)
		diff := in.linOfNode(src, lt.l).add(in.linOfNode(src, lt.r).scale(-1))
		switch {
		case lt.pred == logic.Eq && lt.pos:
			ccEqs = append(ccEqs, ccEq{l, r})
			constraints = append(constraints, liaConstraint{l: diff, eq: true})
		case lt.pred == logic.Eq && !lt.pos:
			ccNeqs = append(ccNeqs, ccEq{l, r})
			diseqLins = append(diseqLins, diff)
		case lt.pred == logic.Le && lt.pos:
			constraints = append(constraints, liaConstraint{l: diff, upper: true})
		case lt.pred == logic.Le && !lt.pos:
			// ¬(l ≤ r)  ⇔  r ≤ l - 1  ⇔  r - l + 1 ≤ 0
			neg := diff.scale(-1)
			neg.c++
			constraints = append(constraints, liaConstraint{l: neg, upper: true})
		case lt.pred == logic.Lt && lt.pos:
			d := diff
			d.c++
			constraints = append(constraints, liaConstraint{l: d, upper: true})
		case lt.pred == logic.Lt && !lt.pos:
			// ¬(l < r) ⇔ r ≤ l ⇔ r - l ≤ 0
			constraints = append(constraints, liaConstraint{l: diff.scale(-1), upper: true})
		}
	}

	// Definitional constraints for interpreted interior nodes. The node
	// slice can grow while we process it ($mulraw canonicalisation).
	var defs []lin
	for id := 0; id < len(in.nodes); id++ {
		nd := in.nodes[id]
		switch nd.fn {
		case "$add":
			l := newLin().addTerm(id, 1).addTerm(nd.children[0], -1).addTerm(nd.children[1], -1)
			defs = append(defs, l)
		case "$sub":
			l := newLin().addTerm(id, 1).addTerm(nd.children[0], -1).addTerm(nd.children[1], 1)
			defs = append(defs, l)
		case "$mulraw":
			a, b := nd.children[0], nd.children[1]
			na, nb := in.nodes[a], in.nodes[b]
			switch {
			case na.isConst && nb.isConst:
				l := newLin().addTerm(id, 1)
				l.c = -na.constVal * nb.constVal
				defs = append(defs, l)
			case na.isConst:
				l := newLin().addTerm(id, 1).addTerm(b, -na.constVal)
				defs = append(defs, l)
			case nb.isConst:
				l := newLin().addTerm(id, 1).addTerm(a, -nb.constVal)
				defs = append(defs, l)
			default:
				x, y := a, b
				if y < x {
					x, y = y, x
				}
				m := in.internApp("$mul", []int{x, y})
				defs = append(defs, newLin().addTerm(id, 1).addTerm(m, -1))
			}
		default:
			if nd.isConst {
				l := newLin().addTerm(id, 1)
				l.c = -nd.constVal
				defs = append(defs, l)
			}
		}
	}

	// Congruence closure.
	cc := newCongruence(in)
	for _, e := range ccEqs {
		cc.assertEq(e.a, e.b)
	}
	for _, e := range ccNeqs {
		cc.assertNeq(e.a, e.b)
	}
	if cc.conflict {
		return theoryUnsat
	}

	// Candidate pairs for Nelson–Oppen equality propagation: an equality
	// between two nodes only matters to congruence closure when they occur
	// as the same argument position of two applications of the same
	// function, so we bucket argument nodes by (function, position) and
	// probe within buckets only.
	argBuckets := map[string][]int{}
	for id := 0; id < len(in.nodes); id++ {
		nd := in.nodes[id]
		if nd.fn == "" {
			continue
		}
		for pos, ch := range nd.children {
			key := nd.fn + "#" + itoa(pos)
			argBuckets[key] = append(argBuckets[key], ch)
		}
	}
	// Iterate buckets in sorted key order and dedupe pairs globally: the
	// probe budget below is consumed in candPairs order, so this order must
	// be a function of the formula alone, never of map iteration.
	bucketKeys := make([]string, 0, len(argBuckets))
	for k := range argBuckets {
		bucketKeys = append(bucketKeys, k)
	}
	sort.Strings(bucketKeys)
	var candPairs [][2]int
	seenPair := map[[2]int]bool{}
	for _, k := range bucketKeys {
		bucket := argBuckets[k]
		seen := map[int]bool{}
		var uniq []int
		for _, id := range bucket {
			if !seen[id] {
				seen[id] = true
				uniq = append(uniq, id)
			}
		}
		for i := 0; i < len(uniq); i++ {
			for j := i + 1; j < len(uniq); j++ {
				a, b := uniq[i], uniq[j]
				if b < a {
					a, b = b, a
				}
				p := [2]int{a, b}
				if !seenPair[p] {
					seenPair[p] = true
					candPairs = append(candPairs, p)
				}
			}
		}
	}

	probeBudget := cfg.noEqProbes
	for round := 0; ; round++ {
		// Build the arithmetic problem: structural variables are the node
		// proxies; each distinct linear form gets one slack variable.
		// Equalities derived by congruence closure this round.
		allNodes := make([]int, len(in.nodes))
		for i := range allNodes {
			allNodes[i] = i
		}
		ccPairs := cc.congruentPairs(allNodes)
		// Upper bound on distinct slack variables this round: getSlack
		// dedupes identical linear forms, so the real count is usually close.
		slackHint := len(defs) + len(constraints) + len(ccPairs) + len(diseqLins)
		sx := newSimplex(len(in.nodes), cfg.maxPivots, slackHint)
		slackOf := map[string]int{}
		var keyBuf []byte
		var comboBuf []sterm
		getSlack := func(l lin) int {
			// Canonical key of the linear form: terms (already sorted by
			// entity id), then the constant. Built from bytes — this runs
			// once per asserted constraint per round and fmt dominates
			// otherwise.
			keyBuf = keyBuf[:0]
			for _, t := range l.terms {
				keyBuf = strconv.AppendInt(keyBuf, t.k, 10)
				keyBuf = append(keyBuf, 'n')
				keyBuf = strconv.AppendInt(keyBuf, int64(t.id), 10)
				keyBuf = append(keyBuf, '+')
			}
			keyBuf = strconv.AppendInt(keyBuf, l.c, 10)
			k := string(keyBuf)
			if s, ok := slackOf[k]; ok {
				return s
			}
			combo := comboBuf[:0]
			for _, t := range l.terms {
				combo = append(combo, sterm{x: t.id, c: qInt(t.k)})
			}
			s := sx.addSlack(combo)
			comboBuf = combo[:0]
			slackOf[k] = s
			return s
		}
		feasible := true
		assertLe := func(l lin) { // Σ coef + c ≤ 0
			s := getSlack(l)
			if !sx.assertUpper(s, qInt(-l.c)) {
				feasible = false
			}
		}
		assertEq0 := func(l lin) {
			s := getSlack(l)
			if !sx.assertUpper(s, qInt(-l.c)) || !sx.assertLower(s, qInt(-l.c)) {
				feasible = false
			}
		}
		for _, d := range defs {
			assertEq0(d)
		}
		for _, con := range constraints {
			if con.eq {
				assertEq0(con.l)
			} else {
				assertLe(con.l)
			}
		}
		for _, p := range ccPairs {
			assertEq0(newLin().addTerm(p[0], 1).addTerm(p[1], -1))
		}
		if !feasible {
			return theoryUnsat
		}
		// Disequality slacks (bounded during branch & bound).
		var diseqSlacks []int
		var diseqConsts []int64
		for _, d := range diseqLins {
			diseqSlacks = append(diseqSlacks, getSlack(d))
			diseqConsts = append(diseqConsts, d.c)
		}

		st := solveInt(sx, diseqSlacks, diseqConsts, cfg.branchDepth)
		if st != theorySat {
			return st
		}
		// Nelson–Oppen: probe for LIA-implied equalities between candidate
		// argument nodes whose proxies coincide in the current model but
		// whose CC classes differ; assert them into CC and retry. Sat may
		// only be answered once a full scan found nothing left to
		// propagate: an exhausted probe or round budget means unprobed
		// pairs may hide a forced equality, so the sound answer is Unknown,
		// never Sat.
		progress := false
		exhausted := false
		for _, pair := range candPairs {
			a, b := pair[0], pair[1]
			if cc.find(a) == cc.find(b) {
				continue
			}
			if qCmp(sx.val(a), sx.val(b)) != 0 {
				continue
			}
			if probeBudget <= 0 {
				exhausted = true
				break
			}
			probeBudget--
			lo := sx.clone()
			s1 := lo.addSlack([]sterm{{x: a, c: qOne}, {x: b, c: qInt(-1)}})
			okLo := lo.assertUpper(s1, qInt(-1))
			if okLo {
				okLo, _ = lo.check()
			}
			hi := sx.clone()
			s2 := hi.addSlack([]sterm{{x: a, c: qOne}, {x: b, c: qInt(-1)}})
			okHi := hi.assertLower(s2, qInt(1))
			if okHi {
				okHi, _ = hi.check()
			}
			if !okLo && !okHi {
				cc.assertEq(a, b)
				if cc.conflict {
					return theoryUnsat
				}
				progress = true
			}
		}
		if !progress {
			if exhausted {
				return theoryUnknown
			}
			return theorySat
		}
		if round >= cfg.noEqRounds {
			return theoryUnknown
		}
	}
}

// solveInt runs branch & bound for integrality on top of a feasible-or-not
// rational simplex, then splits on violated disequalities. diseqConsts[i]
// is the constant part of the i-th disequality's linear form: the slack
// must avoid the value -c.
func solveInt(s *simplex, diseqSlacks []int, diseqConsts []int64, depth int) theoryStatus {
	feasible, over := s.check()
	if !feasible {
		return theoryUnsat
	}
	if over {
		return theoryUnknown
	}
	if x := s.fractionalStructural(); x >= 0 {
		if depth == 0 {
			return theoryUnknown
		}
		fl, cl := qFloorCeil(s.val(x))
		var anyUnknown bool
		lo := s.clone()
		if lo.assertUpper(x, fl) {
			switch solveInt(lo, diseqSlacks, diseqConsts, depth-1) {
			case theorySat:
				// Propagate the integral model back so Nelson–Oppen probing
				// sees it.
				*s = *lo
				return theorySat
			case theoryUnknown:
				anyUnknown = true
			}
		}
		hi := s.clone()
		if hi.assertLower(x, cl) {
			switch solveInt(hi, diseqSlacks, diseqConsts, depth-1) {
			case theorySat:
				*s = *hi
				return theorySat
			case theoryUnknown:
				anyUnknown = true
			}
		}
		if anyUnknown {
			return theoryUnknown
		}
		return theoryUnsat
	}
	// Integral: check disequalities.
	for i, sl := range diseqSlacks {
		avoid := qInt(-diseqConsts[i])
		if qCmp(s.val(sl), avoid) != 0 {
			continue
		}
		if depth == 0 {
			return theoryUnknown
		}
		var anyUnknown bool
		lo := s.clone()
		if lo.assertUpper(sl, qSub(avoid, qOne)) {
			switch solveInt(lo, diseqSlacks, diseqConsts, depth-1) {
			case theorySat:
				*s = *lo
				return theorySat
			case theoryUnknown:
				anyUnknown = true
			}
		}
		hi := s.clone()
		if hi.assertLower(sl, qAdd(avoid, qOne)) {
			switch solveInt(hi, diseqSlacks, diseqConsts, depth-1) {
			case theorySat:
				*s = *hi
				return theorySat
			case theoryUnknown:
				anyUnknown = true
			}
		}
		if anyUnknown {
			return theoryUnknown
		}
		return theoryUnsat
	}
	return theorySat
}
