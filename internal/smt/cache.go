package smt

import (
	"sync"
	"sync/atomic"

	"consolidation/internal/logic"
)

// Cache is a concurrency-safe query cache shared between Solver instances.
// Entries are keyed by the formula's precomputed 64-bit structural hash
// (computed once at interning time by the hash-consing arena in
// internal/logic) and striped over a fixed number of shards, each guarded
// by its own mutex, so parallel consolidation workers rarely contend on the
// same lock. Structural hashes are interner-independent — two workers
// interning the same formula into private arenas compute the same hash —
// so verdicts flow between workers exactly as the old text keys allowed,
// without rendering a single byte. Hash collisions are resolved by bucket
// lists verified against a canonical byte encoding of the formula
// (logic.AppendEncoding), so a collision can cost a comparison but never
// a wrong verdict. Entries keep only that flat encoding — not the
// formula tree — so a full cache is nearly free for the garbage
// collector to trace.
//
// The divide-and-conquer driver in internal/consolidate injects one Cache
// into every pair worker: later pairs and later levels re-issue many
// queries that earlier ones already solved, and the shared cache turns
// those into lookups.
//
// Decided verdicts (Sat/Unsat) are cached unconditionally — they are true
// forever. Unknown verdicts are budget-capped artefacts, not facts about
// the formula: an entry produced under MaxConflicts=100 must not shadow a
// later query that is willing to spend 200000 conflicts. Unknown entries
// therefore carry the budget that produced them and hit only for queries
// whose budget does not exceed it (a smaller budget cannot do better).
//
// The zero Cache is not usable; construct with NewCache.
type Cache struct {
	shards [cacheShards]cacheShard
	// maxPerShard bounds each shard's entry count; 0 means unbounded.
	// Eviction is FIFO per shard: consolidation queries have strong level
	// locality, so dropping the oldest entries first is a good fit and
	// keeps eviction O(1).
	maxPerShard int

	lookups   atomic.Uint64
	hits      atomic.Uint64
	stores    atomic.Uint64
	evictions atomic.Uint64
	contended atomic.Uint64
}

// cacheShards is a power of two so the hash can be masked, large enough
// that GOMAXPROCS workers hashing uniformly rarely collide on a stripe.
const cacheShards = 64

type cacheShard struct {
	mu sync.Mutex
	// m buckets entries by structural hash; each bucket holds the formulas
	// (almost always exactly one) sharing that hash, oldest first.
	m     map[uint64][]hashEntry
	order []uint64 // insertion order of entry hashes, for FIFO eviction
}

// hashEntry is one cached verdict together with the canonical encoding
// of the formula that keys it, kept for collision verification.
type hashEntry struct {
	enc []byte
	e   cacheEntry
}

// cacheEntry records a verdict; for Unknown it also records the budget
// that failed to decide the query.
type cacheEntry struct {
	result    Result
	conflicts int
	lazyIters int
}

// CacheStats is a point-in-time snapshot of the cache counters. Counters
// accumulate over the cache's lifetime, so callers comparing runs should
// use a fresh Cache per run or diff snapshots.
type CacheStats struct {
	Lookups   uint64
	Hits      uint64
	Stores    uint64
	Evictions uint64
	// Contended counts lock acquisitions that found the shard mutex held
	// by another goroutine — a direct measure of stripe contention.
	Contended uint64
	Entries   int
	Shards    int
}

// HitRate is Hits/Lookups in [0,1]; 0 when nothing was looked up.
func (cs CacheStats) HitRate() float64 {
	if cs.Lookups == 0 {
		return 0
	}
	return float64(cs.Hits) / float64(cs.Lookups)
}

// NewCache returns a cache bounded to roughly maxEntries entries
// (0 = unbounded). The bound is approximate: it is split evenly across
// shards and enforced per shard.
func NewCache(maxEntries int) *Cache {
	c := &Cache{}
	if maxEntries > 0 {
		c.maxPerShard = (maxEntries + cacheShards - 1) / cacheShards
		if c.maxPerShard < 1 {
			c.maxPerShard = 1
		}
	}
	for i := range c.shards {
		c.shards[i].m = map[uint64][]hashEntry{}
	}
	return c
}

// shardOf stripes by the structural hash. The hash is already well mixed
// (splitmix finalizer), so masking low bits is uniform, and it is
// deterministic across processes, which keeps shard assignment (and
// therefore eviction behaviour) reproducible run to run. O(1): no bytes
// are hashed per call.
func shardOf(h uint64) uint32 {
	return uint32(h) & (cacheShards - 1)
}

// lock acquires the shard mutex, counting contention.
func (c *Cache) lock(sh *cacheShard) {
	if sh.mu.TryLock() {
		return
	}
	c.contended.Add(1)
	sh.mu.Lock()
}

// find locates the node's entry in a bucket; callers hold the shard lock.
func bucketFind(bucket []hashEntry, in *logic.Interner, id logic.NodeID) int {
	for i := range bucket {
		if in.EncodingMatches(id, bucket[i].enc) {
			return i
		}
	}
	return -1
}

// Get looks up a verdict for the interned formula id (whose precomputed
// structural hash is h) under the given solver budget. Decided entries
// always hit; an Unknown entry hits only when the query's budget is no
// larger than the budget that produced it. Get allocates nothing.
func (c *Cache) Get(h uint64, in *logic.Interner, id logic.NodeID, conflicts, lazyIters int) (Result, bool) {
	c.lookups.Add(1)
	sh := &c.shards[shardOf(h)]
	c.lock(sh)
	var e cacheEntry
	ok := false
	if bucket := sh.m[h]; bucket != nil {
		if i := bucketFind(bucket, in, id); i >= 0 {
			e, ok = bucket[i].e, true
		}
	}
	sh.mu.Unlock()
	if !ok {
		return Unknown, false
	}
	if e.result == Unknown && (conflicts > e.conflicts || lazyIters > e.lazyIters) {
		// The caller has more budget than the run that gave up; the query
		// may well be decidable now. Miss, so it is re-solved.
		return Unknown, false
	}
	c.hits.Add(1)
	return e.result, true
}

// Put stores a verdict computed under the given budget and reports whether
// it was stored. Decided verdicts replace anything, including a stale
// Unknown. An Unknown is stored together with its budget — it can answer
// only queries with no more budget than that — and never overwrites a
// decided entry.
func (c *Cache) Put(h uint64, in *logic.Interner, id logic.NodeID, r Result, conflicts, lazyIters int) bool {
	sh := &c.shards[shardOf(h)]
	c.lock(sh)
	defer sh.mu.Unlock()
	bucket := sh.m[h]
	idx := bucketFind(bucket, in, id)
	e := cacheEntry{result: r}
	if r == Unknown {
		if idx >= 0 && bucket[idx].e.result != Unknown {
			// A budget-capped Unknown must never shadow a decided verdict.
			return false
		}
		e.conflicts, e.lazyIters = conflicts, lazyIters
		if idx >= 0 {
			// Keep the largest budget seen so equally-budgeted re-queries
			// keep hitting after a racing lower-budget store.
			if old := bucket[idx].e; old.conflicts > e.conflicts {
				e.conflicts = old.conflicts
			}
			if old := bucket[idx].e; old.lazyIters > e.lazyIters {
				e.lazyIters = old.lazyIters
			}
		}
	}
	if idx < 0 {
		if c.maxPerShard > 0 && len(sh.order) >= c.maxPerShard {
			victim := sh.order[0]
			sh.order = sh.order[1:]
			vb := sh.m[victim]
			// The oldest entry under that hash is the bucket head.
			if len(vb) <= 1 {
				delete(sh.m, victim)
			} else {
				sh.m[victim] = vb[1:]
			}
			c.evictions.Add(1)
		}
		sh.order = append(sh.order, h)
		sh.m[h] = append(sh.m[h], hashEntry{enc: in.AppendEncoding(nil, id), e: e})
	} else {
		bucket[idx].e = e
	}
	c.stores.Add(1)
	return true
}

// Len reports the current number of entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		c.lock(sh)
		for _, bucket := range sh.m {
			n += len(bucket)
		}
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Lookups:   c.lookups.Load(),
		Hits:      c.hits.Load(),
		Stores:    c.stores.Load(),
		Evictions: c.evictions.Load(),
		Contended: c.contended.Load(),
		Entries:   c.Len(),
		Shards:    cacheShards,
	}
}
