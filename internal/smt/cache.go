package smt

import (
	"sync"
	"sync/atomic"
)

// Cache is a concurrency-safe query cache shared between Solver instances.
// Entries are keyed by formula text and striped over a fixed number of
// shards, each guarded by its own mutex, so parallel consolidation workers
// rarely contend on the same lock. The divide-and-conquer driver in
// internal/consolidate injects one Cache into every pair worker: later
// pairs and later levels re-issue many queries that earlier ones already
// solved, and the shared cache turns those into lookups.
//
// Decided verdicts (Sat/Unsat) are cached unconditionally — they are true
// forever. Unknown verdicts are budget-capped artefacts, not facts about
// the formula: an entry produced under MaxConflicts=100 must not shadow a
// later query that is willing to spend 200000 conflicts. Unknown entries
// therefore carry the budget that produced them and hit only for queries
// whose budget does not exceed it (a smaller budget cannot do better).
//
// The zero Cache is not usable; construct with NewCache.
type Cache struct {
	shards [cacheShards]cacheShard
	// maxPerShard bounds each shard's entry count; 0 means unbounded.
	// Eviction is FIFO per shard: consolidation queries have strong level
	// locality, so dropping the oldest entries first is a good fit and
	// keeps eviction O(1).
	maxPerShard int

	lookups   atomic.Uint64
	hits      atomic.Uint64
	stores    atomic.Uint64
	evictions atomic.Uint64
	contended atomic.Uint64
}

// cacheShards is a power of two so the hash can be masked, large enough
// that GOMAXPROCS workers hashing uniformly rarely collide on a stripe.
const cacheShards = 64

type cacheShard struct {
	mu    sync.Mutex
	m     map[string]cacheEntry
	order []string // insertion order, for FIFO eviction
}

// cacheEntry records a verdict; for Unknown it also records the budget
// that failed to decide the query.
type cacheEntry struct {
	result    Result
	conflicts int
	lazyIters int
}

// CacheStats is a point-in-time snapshot of the cache counters. Counters
// accumulate over the cache's lifetime, so callers comparing runs should
// use a fresh Cache per run or diff snapshots.
type CacheStats struct {
	Lookups   uint64
	Hits      uint64
	Stores    uint64
	Evictions uint64
	// Contended counts lock acquisitions that found the shard mutex held
	// by another goroutine — a direct measure of stripe contention.
	Contended uint64
	Entries   int
	Shards    int
}

// HitRate is Hits/Lookups in [0,1]; 0 when nothing was looked up.
func (cs CacheStats) HitRate() float64 {
	if cs.Lookups == 0 {
		return 0
	}
	return float64(cs.Hits) / float64(cs.Lookups)
}

// NewCache returns a cache bounded to roughly maxEntries entries
// (0 = unbounded). The bound is approximate: it is split evenly across
// shards and enforced per shard.
func NewCache(maxEntries int) *Cache {
	c := &Cache{}
	if maxEntries > 0 {
		c.maxPerShard = (maxEntries + cacheShards - 1) / cacheShards
		if c.maxPerShard < 1 {
			c.maxPerShard = 1
		}
	}
	for i := range c.shards {
		c.shards[i].m = map[string]cacheEntry{}
	}
	return c
}

// shardOf stripes a key by FNV-1a hash. FNV is deterministic across
// processes, which keeps shard assignment (and therefore eviction
// behaviour) reproducible run to run.
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h & (cacheShards - 1)
}

// lock acquires the shard mutex, counting contention.
func (c *Cache) lock(sh *cacheShard) {
	if sh.mu.TryLock() {
		return
	}
	c.contended.Add(1)
	sh.mu.Lock()
}

// Get looks up a verdict for key under the given solver budget. Decided
// entries always hit; an Unknown entry hits only when the query's budget
// is no larger than the budget that produced it.
func (c *Cache) Get(key string, conflicts, lazyIters int) (Result, bool) {
	c.lookups.Add(1)
	sh := &c.shards[shardOf(key)]
	c.lock(sh)
	e, ok := sh.m[key]
	sh.mu.Unlock()
	if !ok {
		return Unknown, false
	}
	if e.result == Unknown && (conflicts > e.conflicts || lazyIters > e.lazyIters) {
		// The caller has more budget than the run that gave up; the query
		// may well be decidable now. Miss, so it is re-solved.
		return Unknown, false
	}
	c.hits.Add(1)
	return e.result, true
}

// Put stores a verdict computed under the given budget and reports whether
// it was stored. Decided verdicts replace anything, including a stale
// Unknown. An Unknown is stored together with its budget — it can answer
// only queries with no more budget than that — and never overwrites a
// decided entry.
func (c *Cache) Put(key string, r Result, conflicts, lazyIters int) bool {
	sh := &c.shards[shardOf(key)]
	c.lock(sh)
	defer sh.mu.Unlock()
	old, exists := sh.m[key]
	e := cacheEntry{result: r}
	if r == Unknown {
		if exists && old.result != Unknown {
			// A budget-capped Unknown must never shadow a decided verdict.
			return false
		}
		e.conflicts, e.lazyIters = conflicts, lazyIters
		if exists {
			// Keep the largest budget seen so equally-budgeted re-queries
			// keep hitting after a racing lower-budget store.
			if old.conflicts > e.conflicts {
				e.conflicts = old.conflicts
			}
			if old.lazyIters > e.lazyIters {
				e.lazyIters = old.lazyIters
			}
		}
	}
	if !exists {
		if c.maxPerShard > 0 && len(sh.order) >= c.maxPerShard {
			victim := sh.order[0]
			sh.order = sh.order[1:]
			delete(sh.m, victim)
			c.evictions.Add(1)
		}
		sh.order = append(sh.order, key)
	}
	sh.m[key] = e
	c.stores.Add(1)
	return true
}

// Len reports the current number of entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		c.lock(sh)
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Lookups:   c.lookups.Load(),
		Hits:      c.hits.Load(),
		Stores:    c.stores.Load(),
		Evictions: c.evictions.Load(),
		Contended: c.contended.Load(),
		Entries:   c.Len(),
		Shards:    cacheShards,
	}
}
