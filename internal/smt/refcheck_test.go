package smt

import (
	"math/rand"
	"testing"

	"consolidation/internal/logic"
)

func TestRefSearchFindsObviousModels(t *testing.T) {
	cfg := DefaultRefConfig()
	cases := []logic.Formula{
		lt(x(), y()),
		logic.And(le(n(0), x()), le(x(), n(2))),
		eq(app("f", x()), app("f", y())),
		logic.Or(lt(x(), n(-100)), eq(x(), n(0))),
		// needs adjacent domain values: y = x+1
		logic.And(lt(x(), y()), lt(y(), add(x(), n(2)))),
	}
	for i, f := range cases {
		m, ok := RefSearch(f, cfg)
		if !ok {
			t.Errorf("case %d: no model found for %s", i, f)
			continue
		}
		if !m.Eval(f) {
			t.Errorf("case %d: returned model does not satisfy %s", i, f)
		}
	}
}

func TestRefSearchFindsNoModelForUnsat(t *testing.T) {
	cfg := DefaultRefConfig()
	cases := []logic.Formula{
		lt(x(), x()),
		logic.And(lt(x(), n(3)), lt(n(5), x())),
		logic.And(eq(x(), y()), logic.Not(eq(app("f", x()), app("f", y())))),
		logic.Not(le(x(), x())),
		logic.FFalse{},
	}
	for i, f := range cases {
		if m, ok := RefSearch(f, cfg); ok {
			t.Errorf("case %d: found spurious model %v for unsat %s", i, m.Vars, f)
		}
	}
}

func TestRefSearchRespectsCaps(t *testing.T) {
	f := logic.And(
		lt(logic.V("a"), logic.V("b")), lt(logic.V("b"), logic.V("c")),
		lt(logic.V("c"), logic.V("d")), lt(logic.V("d"), logic.V("e")),
	)
	if _, ok := RefSearch(f, DefaultRefConfig()); ok {
		t.Fatal("search over 5 variables should be skipped by MaxVars")
	}
	cfg := DefaultRefConfig()
	cfg.MaxVars = 5
	if _, ok := RefSearch(f, cfg); !ok {
		t.Fatal("raised cap should find the ascending-chain model")
	}
}

// TestRandomFormulaAgainstSolver is a compact deterministic sweep of the
// same property the fuzz target checks, so every `go test` run exercises
// generator, reference search, and solver together.
func TestRandomFormulaAgainstSolver(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 120
	}
	cfg := DefaultFormulaGenConfig()
	ref := DefaultRefConfig()
	var sat, unsat, unknown, refHits int
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(int64(42000 + i)))
		c := cfg
		c.UFBias = i%3 == 1
		c.LIABias = i%3 == 2
		f := RandomFormula(rng, c)
		s := New()
		switch s.Check(f) {
		case Sat:
			sat++
		case Unknown:
			unknown++
		case Unsat:
			unsat++
			if m, ok := RefSearch(f, ref); ok {
				t.Fatalf("seed %d: unsat verdict refuted by model %v\nformula: %s", 42000+i, m.Vars, f)
			}
		}
		if _, ok := RefSearch(f, ref); ok {
			refHits++
		}
	}
	// The sweep is only meaningful if it exercises both verdict kinds and
	// the reference search actually finds models.
	if sat == 0 || unsat == 0 {
		t.Fatalf("degenerate sweep: sat=%d unsat=%d unknown=%d", sat, unsat, unknown)
	}
	if refHits == 0 {
		t.Fatal("reference search never found a model; soundness check is vacuous")
	}
}
