package smt

import (
	"math/rand"
	"testing"
)

// bruteForceSAT decides small instances exhaustively.
func bruteForceSAT(nvars int, clauses [][]int) bool {
	for mask := 0; mask < 1<<nvars; mask++ {
		ok := true
		for _, cl := range clauses {
			sat := false
			for _, lit := range cl {
				v := lit
				if v < 0 {
					v = -v
				}
				val := mask>>(v-1)&1 == 1
				if (lit > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func modelSatisfies(clauses [][]int, model []int8) bool {
	for _, cl := range clauses {
		sat := false
		for _, lit := range cl {
			v := lit
			if v < 0 {
				v = -v
			}
			if model[v] == 0 {
				continue
			}
			if (model[v] == 1) == (lit > 0) {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

func TestCDCLBasics(t *testing.T) {
	cases := []struct {
		nvars   int
		clauses [][]int
		want    satStatus
	}{
		{1, [][]int{{1}}, satSat},
		{1, [][]int{{1}, {-1}}, satUnsat},
		{2, [][]int{{1, 2}, {-1, 2}, {1, -2}, {-1, -2}}, satUnsat},
		{3, [][]int{{1, 2, 3}, {-1}, {-2}}, satSat},
		{2, [][]int{{1}, {-1, 2}, {-2, -1}}, satUnsat}, // unit chain conflict
		{0, nil, satSat},
	}
	for i, c := range cases {
		st, model := solveCDCL(c.nvars, c.clauses, 100000)
		if st != c.want {
			t.Errorf("case %d: status %v, want %v", i, st, c.want)
			continue
		}
		if st == satSat && len(c.clauses) > 0 && !modelSatisfies(c.clauses, model) {
			t.Errorf("case %d: model does not satisfy formula", i)
		}
	}
}

// TestCDCLPigeonhole: n+1 pigeons into n holes is UNSAT and requires real
// conflict-driven search.
func TestCDCLPigeonhole(t *testing.T) {
	const holes = 4
	const pigeons = holes + 1
	varOf := func(p, h int) int { return p*holes + h + 1 }
	var clauses [][]int
	for p := 0; p < pigeons; p++ {
		var cl []int
		for h := 0; h < holes; h++ {
			cl = append(cl, varOf(p, h))
		}
		clauses = append(clauses, cl)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				clauses = append(clauses, []int{-varOf(p1, h), -varOf(p2, h)})
			}
		}
	}
	st, _ := solveCDCL(pigeons*holes, clauses, 1000000)
	if st != satUnsat {
		t.Fatalf("PHP(%d,%d) = %v, want unsat", pigeons, holes, st)
	}
}

// TestCDCLRandom3SAT cross-checks CDCL against brute force on random
// instances around the phase-transition density (m/n ≈ 4.3), where both
// satisfiable and unsatisfiable instances are common.
func TestCDCLRandom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		nvars := 4 + rng.Intn(9)
		nclauses := int(4.3*float64(nvars)) + rng.Intn(3)
		var clauses [][]int
		for i := 0; i < nclauses; i++ {
			cl := make([]int, 0, 3)
			for len(cl) < 3 {
				v := 1 + rng.Intn(nvars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				dup := false
				for _, l := range cl {
					if l == v || l == -v {
						dup = true
					}
				}
				if !dup {
					cl = append(cl, v)
				}
			}
			clauses = append(clauses, cl)
		}
		st, model := solveCDCL(nvars, clauses, 100000)
		want := bruteForceSAT(nvars, clauses)
		if st == satUnknown {
			t.Fatalf("trial %d: budget exceeded on tiny instance", trial)
		}
		if (st == satSat) != want {
			t.Fatalf("trial %d: CDCL=%v brute=%v (n=%d m=%d)", trial, st, want, nvars, nclauses)
		}
		if st == satSat && !modelSatisfies(clauses, model) {
			t.Fatalf("trial %d: returned model does not satisfy the formula", trial)
		}
	}
}

// TestCDCLAgainstDPLL runs both SAT cores on the same random instances.
func TestCDCLAgainstDPLL(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		nvars := 3 + rng.Intn(8)
		nclauses := 2 + rng.Intn(4*nvars)
		var clauses [][]int
		for i := 0; i < nclauses; i++ {
			width := 1 + rng.Intn(3)
			var cl []int
			for j := 0; j < width; j++ {
				v := 1 + rng.Intn(nvars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl = append(cl, v)
			}
			clauses = append(clauses, cl)
		}
		st1, _ := solveCDCL(nvars, clauses, 100000)
		st2, _ := solveSAT(nvars, clauses, 1000000)
		if st1 != st2 {
			t.Fatalf("trial %d: CDCL=%v DPLL=%v on %v", trial, st1, st2, clauses)
		}
	}
}
