package smt

import (
	"testing"

	"consolidation/internal/logic"
)

func x() logic.Term        { return logic.V("x") }
func y() logic.Term        { return logic.V("y") }
func z() logic.Term        { return logic.V("z") }
func n(v int64) logic.Term { return logic.Num(v) }

func add(a, b logic.Term) logic.Term              { return logic.TBin{Op: logic.Add, L: a, R: b} }
func sub(a, b logic.Term) logic.Term              { return logic.TBin{Op: logic.Sub, L: a, R: b} }
func mul(a, b logic.Term) logic.Term              { return logic.TBin{Op: logic.Mul, L: a, R: b} }
func app(f string, args ...logic.Term) logic.Term { return logic.TApp{Func: f, Args: args} }

func lt(a, b logic.Term) logic.Formula { return logic.Atom(logic.Lt, a, b) }
func le(a, b logic.Term) logic.Formula { return logic.Atom(logic.Le, a, b) }
func eq(a, b logic.Term) logic.Formula { return logic.Atom(logic.Eq, a, b) }

func TestBasicArithmetic(t *testing.T) {
	s := New()
	cases := []struct {
		f    logic.Formula
		want Result
	}{
		{logic.And(lt(x(), n(3)), lt(n(5), x())), Unsat},
		{logic.And(le(x(), n(3)), le(n(3), x())), Sat},
		{logic.And(eq(x(), n(3)), lt(x(), n(3))), Unsat},
		{logic.And(lt(x(), y()), lt(y(), z()), lt(z(), x())), Unsat},
		{logic.And(le(x(), y()), le(y(), x()), logic.Not(eq(x(), y()))), Unsat},
		{logic.And(lt(x(), y()), lt(y(), add(x(), n(2)))), Sat}, // y = x+1
		{logic.And(lt(x(), y()), lt(y(), add(x(), n(1)))), Unsat},
		{logic.Not(le(x(), x())), Unsat},
		{eq(add(x(), y()), add(y(), x())), Sat},
		{logic.Not(eq(add(x(), y()), add(y(), x()))), Unsat},
		{logic.And(eq(mul(n(2), x()), n(5))), Unsat}, // 2x=5 has no integer solution
		{logic.And(eq(mul(n(2), x()), n(6))), Sat},
		{logic.And(le(n(0), x()), le(x(), n(1)), logic.Not(eq(x(), n(0))), logic.Not(eq(x(), n(1)))), Unsat},
	}
	for i, c := range cases {
		if got := s.Check(c.f); got != c.want {
			t.Errorf("case %d: Check(%v) = %v, want %v", i, c.f, got, c.want)
		}
	}
}

func TestUninterpretedFunctions(t *testing.T) {
	s := New()
	fx := app("f", x())
	fy := app("f", y())
	cases := []struct {
		f    logic.Formula
		want Result
	}{
		{logic.And(eq(x(), y()), logic.Not(eq(fx, fy))), Unsat},
		{logic.And(logic.Not(eq(x(), y())), eq(fx, fy)), Sat},
		{logic.And(eq(fx, n(1)), eq(fy, n(2)), eq(x(), y())), Unsat},
		// f(f(x)) = x, f(x) = x ⊢ nothing wrong.
		{logic.And(eq(app("f", fx), x()), eq(fx, x())), Sat},
		// congruence chain: x=y ∧ f(x)≠f(y) via g: g(f(x)) vs g(f(y))
		{logic.And(eq(x(), y()), logic.Not(eq(app("g", fx), app("g", fy)))), Unsat},
		// two-argument congruence
		{logic.And(eq(x(), y()), logic.Not(eq(app("h", x(), z()), app("h", y(), z())))), Unsat},
		{logic.And(eq(x(), y()), logic.Not(eq(app("h", x(), z()), app("h", z(), y())))), Sat},
	}
	for i, c := range cases {
		if got := s.Check(c.f); got != c.want {
			t.Errorf("case %d: Check(%v) = %v, want %v", i, c.f, got, c.want)
		}
	}
}

func TestCombinedTheory(t *testing.T) {
	s := New()
	fx := app("f", x())
	cases := []struct {
		f    logic.Formula
		want Result
	}{
		// memoization pattern: v = f(α) ∧ x = α ⊨ f(x) = v
		{logic.And(
			eq(logic.V("v"), app("f", logic.V("a"))),
			eq(x(), logic.V("a")),
			logic.Not(eq(fx, logic.V("v"))),
		), Unsat},
		// arithmetic feeding congruence: x = y+1 ∧ z = y+1 ⊨ f(x) = f(z)
		{logic.And(
			eq(x(), add(y(), n(1))),
			eq(z(), add(y(), n(1))),
			logic.Not(eq(fx, app("f", z()))),
		), Unsat},
		// congruence feeding arithmetic: x = y ⊨ f(x) - f(y) = 0
		{logic.And(
			eq(x(), y()),
			logic.Not(eq(sub(fx, app("f", y())), n(0))),
		), Unsat},
		// f(x) ≤ 3 ∧ f(y) ≥ 5 ∧ x = y
		{logic.And(le(fx, n(3)), le(n(5), app("f", y())), eq(x(), y())), Unsat},
		// Nelson–Oppen: x ≤ y ∧ y ≤ x (no explicit equality) ⊨ f(x) = f(y)
		{logic.And(le(x(), y()), le(y(), x()), logic.Not(eq(fx, app("f", y())))), Unsat},
	}
	for i, c := range cases {
		if got := s.Check(c.f); got != c.want {
			t.Errorf("case %d: Check(%v) = %v, want %v", i, c.f, got, c.want)
		}
	}
}

func TestEntailment(t *testing.T) {
	s := New()
	// Ψ from Example 3: α1 > 0 ∧ x = f(α2) ∧ y = α1
	psi := logic.And(
		lt(n(0), logic.V("a1")),
		eq(x(), app("f", logic.V("a2"))),
		eq(y(), logic.V("a1")),
	)
	// Ψ ⊨ y ≥ 0
	if !s.Entails(psi, le(n(0), y())) {
		t.Error("Ψ should entail y ≥ 0")
	}
	// Ψ ⊨ f(α2) = x
	if !s.Entails(psi, eq(app("f", logic.V("a2")), x())) {
		t.Error("Ψ should entail f(α2) = x")
	}
	// Ψ ⊭ x > 0
	if s.Entails(psi, lt(n(0), x())) {
		t.Error("Ψ should not entail x > 0")
	}
	// x > α ⊨ ¬(x ≤ α) (Figure 6)
	if !s.Entails(lt(logic.V("al"), x()), logic.Not(le(x(), logic.V("al")))) {
		t.Error("x > α should entail ¬(x ≤ α)")
	}
}

func TestBooleanStructure(t *testing.T) {
	s := New()
	cases := []struct {
		f    logic.Formula
		want Result
	}{
		{logic.Or(lt(x(), n(0)), le(n(0), x())), Sat},
		{logic.And(logic.Or(lt(x(), n(0)), lt(x(), n(10))), le(n(20), x())), Unsat},
		{logic.Not(logic.Or(le(x(), n(5)), le(n(5), x()))), Unsat},
		{logic.Iff(le(x(), y()), logic.Not(lt(y(), x()))), Sat},
		{logic.Not(logic.Iff(le(x(), y()), logic.Not(lt(y(), x())))), Unsat}, // valid iff
		{logic.FTrue{}, Sat},
		{logic.FFalse{}, Unsat},
		{logic.And(), Sat},
		{logic.Or(), Unsat},
	}
	for i, c := range cases {
		if got := s.Check(c.f); got != c.want {
			t.Errorf("case %d: Check(%v) = %v, want %v", i, c.f, got, c.want)
		}
	}
}

func TestNonlinearConservative(t *testing.T) {
	s := New()
	// x*y = y*x must be valid (canonicalised product).
	if got := s.Check(logic.Not(eq(mul(x(), y()), mul(y(), x())))); got != Unsat {
		t.Errorf("x*y = y*x should be valid, got %v", got)
	}
	// x*x ≥ 0 is true but beyond the linear fragment: must NOT be Unsat
	// when negated (conservative Sat/Unknown is acceptable).
	if got := s.Check(lt(mul(x(), x()), n(0))); got == Unsat {
		t.Errorf("x*x < 0: solver over-claims Unsat in nonlinear fragment")
	}
	// Constant folding inside products stays linear: 3*x = x*3.
	if got := s.Check(logic.Not(eq(mul(n(3), x()), mul(x(), n(3))))); got != Unsat {
		t.Errorf("3x = x3 should be valid, got %v", got)
	}
}

func TestCacheAndStats(t *testing.T) {
	s := New()
	f := logic.And(lt(x(), n(3)), lt(n(5), x()))
	if s.Check(f) != Unsat {
		t.Fatal("expected unsat")
	}
	q := s.Stats.Queries
	if s.Check(f) != Unsat {
		t.Fatal("expected unsat from cache")
	}
	if s.Stats.Queries != q+1 || s.Stats.CacheHits == 0 {
		t.Errorf("cache not used: %+v", s.Stats)
	}
}

// TestAgainstBruteForce cross-validates the solver on random small formulas
// against exhaustive model enumeration: whenever the solver says Unsat, no
// enumerated model may satisfy the formula, and whenever it says Sat on a
// function-free formula, enumeration must find a model.
func TestAgainstBruteForce(t *testing.T) {
	terms := []logic.Term{
		x(), y(), n(0), n(1), n(2),
		add(x(), n(1)), sub(y(), x()), mul(n(2), y()),
	}
	var atoms []logic.Formula
	for i, a := range terms {
		for j, b := range terms {
			if i < j {
				atoms = append(atoms, lt(a, b), eq(a, b))
			}
		}
	}
	s := New()
	rng := uint64(12345)
	next := func(mod int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(mod))
	}
	for trial := 0; trial < 150; trial++ {
		// Random conjunction of 3 literals, sometimes with a disjunction.
		var fs []logic.Formula
		for k := 0; k < 3; k++ {
			a := atoms[next(len(atoms))]
			if next(2) == 0 {
				a = logic.Not(a)
			}
			fs = append(fs, a)
		}
		f := logic.And(fs...)
		if next(3) == 0 {
			f = logic.Or(f, atoms[next(len(atoms))])
		}
		got := s.Check(f)
		// Enumerate models over a small domain.
		found := false
		for xv := int64(-4); xv <= 4 && !found; xv++ {
			for yv := int64(-4); yv <= 4 && !found; yv++ {
				m := logic.Model{Vars: map[string]int64{"x": xv, "y": yv}}
				if m.Eval(f) {
					found = true
				}
			}
		}
		if got == Unsat && found {
			t.Fatalf("trial %d: solver says Unsat but %v has a model", trial, f)
		}
		if got == Sat && !found {
			// The enumeration domain [-4,4] may simply be too small; widen.
			wide := false
			for xv := int64(-12); xv <= 12 && !wide; xv++ {
				for yv := int64(-12); yv <= 12 && !wide; yv++ {
					m := logic.Model{Vars: map[string]int64{"x": xv, "y": yv}}
					if m.Eval(f) {
						wide = true
					}
				}
			}
			if !wide {
				t.Fatalf("trial %d: solver says Sat but no model in [-12,12]²: %v", trial, f)
			}
		}
	}
}

func TestSimplexDirect(t *testing.T) {
	// x + y ≤ 2, x ≥ 2, y ≥ 1 infeasible.
	s := newSimplex(2, 1000, 4)
	sl := s.addSlack([]sterm{{x: 0, c: qOne}, {x: 1, c: qOne}})
	if !s.assertUpper(sl, qInt(2)) || !s.assertLower(0, qInt(2)) || !s.assertLower(1, qInt(1)) {
		// immediate conflicts are fine too
		return
	}
	feasible, over := s.check()
	if feasible || over {
		t.Fatalf("expected infeasible, got feasible=%v over=%v", feasible, over)
	}
}
