package smt

import (
	"sync/atomic"
	"testing"

	"consolidation/internal/logic"
)

// benchFormulas builds n distinct interned conjunctions with their
// structural hashes, the way consolidation workers key the shared cache.
func benchFormulas(n int) (*logic.Interner, []logic.NodeID, []uint64) {
	in := logic.NewInterner()
	ids := make([]logic.NodeID, n)
	hs := make([]uint64, n)
	for i := 0; i < n; i++ {
		f := logic.And(
			le(n_(int64(i)), x()),
			lt(x(), n_(int64(i)+7)),
			eq(logic.TApp{Func: "f", Args: []logic.Term{x()}}, y()),
		)
		ids[i] = in.InternFormula(f)
		hs[i] = in.Hash(ids[i])
	}
	return in, ids, hs
}

func n_(v int64) logic.Term { return logic.Num(v) }

// BenchmarkCacheContention hammers one shared cache from GOMAXPROCS
// goroutines with precomputed hashes — the tentpole's O(1) shard-and-probe
// path. The reported contended-lock count (Stats().Contended) is the
// stripe-pressure signal; ns/op the end-to-end cost of a hit.
func BenchmarkCacheContention(b *testing.B) {
	in, ids, hs := benchFormulas(256)
	c := NewCache(0)
	for i := range ids {
		c.Put(hs[i], in, ids[i], Unsat, 0, 0)
	}
	var i64 atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		j := int(i64.Add(1)) * 17
		for pb.Next() {
			j++
			k := j & 255
			if r, ok := c.Get(hs[k], in, ids[k], 0, 0); !ok || r != Unsat {
				b.Fatal("miss on warmed cache")
			}
		}
	})
	b.ReportMetric(float64(c.Stats().Contended)/float64(b.N), "contended/op")
}

// BenchmarkCachePut measures the store path, including FIFO eviction once
// the per-shard bound is hit.
func BenchmarkCachePut(b *testing.B) {
	in, ids, hs := benchFormulas(256)
	c := NewCache(4 * cacheShards)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 255
		c.Put(hs[k], in, ids[k], Unsat, 0, 0)
	}
}

// TestCacheGetHitAllocation pins the lookup hot path allocation-free: with
// the hash precomputed at interning time, a Get is a mask, a mutex, and a
// bucket scan — no rendering, no hashing, no garbage.
func TestCacheGetHitAllocation(t *testing.T) {
	in, ids, hs := benchFormulas(8)
	c := NewCache(0)
	for i := range ids {
		c.Put(hs[i], in, ids[i], Unsat, 0, 0)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := range ids {
			if r, ok := c.Get(hs[i], in, ids[i], 0, 0); !ok || r != Unsat {
				t.Fatal("miss on warmed cache")
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("cache hits allocated %.1f times per 8 lookups; the text-key rendering has crept back in", allocs)
	}
}

// TestCheckCachedAllocation bounds the whole cache-served Solver.Check: one
// interner walk (all dedup hits) plus the lookup. The text-keyed pipeline
// rendered the formula to a string on every call; a regression shows up as
// an allocation count proportional to formula size.
func TestCheckCachedAllocation(t *testing.T) {
	s := New()
	f := logic.And(
		le(n_(0), x()),
		lt(x(), n_(7)),
		eq(logic.TApp{Func: "f", Args: []logic.Term{x()}}, y()),
	)
	if got := s.Check(f); got != Sat {
		t.Fatalf("Check = %v, want Sat", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if got := s.Check(f); got != Sat {
			t.Fatal("verdict changed")
		}
	})
	if allocs > 4 {
		t.Fatalf("cache-served Check allocated %.1f times; key building has regressed into the hot path", allocs)
	}
}
