package smt

// congruence implements congruence closure over the interned term DAG:
// union-find with congruence propagation for application nodes, conflict
// detection against disequalities and distinct constants.
type congruence struct {
	in     *interner
	parent []int
	rank   []int
	// classConst tracks, per representative, the id of a constant node in
	// the class (-1 when none). Merging classes holding distinct constants
	// is a conflict.
	classConst []int
	// uses[r] lists application nodes having a child in class r.
	uses map[int][]int
	// sigs maps an application signature (fn + representative children) to
	// a node with that signature.
	sigs map[string]int
	// diseqs are pairs asserted distinct.
	diseqs [][2]int

	conflict bool
	// merged records the sequence of performed merges for equality
	// propagation to the arithmetic solver.
	merged [][2]int
}

func newCongruence(in *interner) *congruence {
	n := len(in.nodes)
	c := &congruence{
		in:         in,
		parent:     make([]int, n),
		rank:       make([]int, n),
		classConst: make([]int, n),
		uses:       map[int][]int{},
		sigs:       map[string]int{},
	}
	for i := 0; i < n; i++ {
		c.parent[i] = i
		c.classConst[i] = -1
		if in.nodes[i].isConst {
			c.classConst[i] = i
		}
	}
	for i := 0; i < n; i++ {
		if in.nodes[i].fn != "" {
			for _, ch := range in.nodes[i].children {
				c.uses[c.find(ch)] = append(c.uses[c.find(ch)], i)
			}
			c.insertSig(i)
		}
	}
	return c
}

func (c *congruence) find(x int) int {
	for c.parent[x] != x {
		c.parent[x] = c.parent[c.parent[x]]
		x = c.parent[x]
	}
	return x
}

func (c *congruence) sigOf(n int) string {
	nd := c.in.nodes[n]
	sig := nd.fn
	for _, ch := range nd.children {
		sig += ":" + itoa(c.find(ch))
	}
	return sig
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// insertSig registers node n under its current signature; if another node
// shares the signature, they are congruent and get merged.
func (c *congruence) insertSig(n int) {
	sig := c.sigOf(n)
	if other, ok := c.sigs[sig]; ok {
		c.merge(other, n)
		return
	}
	c.sigs[sig] = n
}

// merge unions the classes of a and b, propagating congruences.
func (c *congruence) merge(a, b int) {
	if c.conflict {
		return
	}
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return
	}
	ca, cb := c.classConst[ra], c.classConst[rb]
	if ca >= 0 && cb >= 0 && c.in.nodes[ca].constVal != c.in.nodes[cb].constVal {
		c.conflict = true
		return
	}
	if c.rank[ra] < c.rank[rb] {
		ra, rb = rb, ra
	}
	// rb joins ra.
	c.parent[rb] = ra
	if c.rank[ra] == c.rank[rb] {
		c.rank[ra]++
	}
	if c.classConst[ra] < 0 {
		c.classConst[ra] = c.classConst[rb]
	}
	c.merged = append(c.merged, [2]int{ra, rb})
	// Re-signature the applications that used rb's class.
	moved := c.uses[rb]
	delete(c.uses, rb)
	c.uses[ra] = append(c.uses[ra], moved...)
	for _, app := range moved {
		c.insertSig(app)
	}
	// Check disequalities.
	for _, d := range c.diseqs {
		if c.find(d[0]) == c.find(d[1]) {
			c.conflict = true
			return
		}
	}
}

// assertEq asserts a = b.
func (c *congruence) assertEq(a, b int) { c.merge(a, b) }

// assertNeq asserts a ≠ b.
func (c *congruence) assertNeq(a, b int) {
	if c.find(a) == c.find(b) {
		c.conflict = true
		return
	}
	c.diseqs = append(c.diseqs, [2]int{a, b})
}

// congruentPairs reports current equivalences among the given nodes as
// (representative-chosen) pairs, used to export CC-derived equalities to
// the arithmetic solver.
func (c *congruence) congruentPairs(nodes []int) [][2]int {
	byRep := map[int]int{}
	var out [][2]int
	for _, n := range nodes {
		r := c.find(n)
		if first, ok := byRep[r]; ok {
			out = append(out, [2]int{first, n})
		} else {
			byRep[r] = n
		}
	}
	return out
}
