package smt

// cdcl is a conflict-driven clause-learning SAT solver: two-watched-literal
// propagation, first-UIP conflict analysis with clause learning, VSIDS-style
// decaying activities, phase saving, and Luby restarts. It replaces the
// simple recursive DPLL for formulas with real boolean structure; the lazy
// SMT loop feeds it the boolean abstraction and blocking clauses.
//
// Literal encoding: variable v ∈ [1, nvars]; literal +v / -v as in DIMACS.
// Internally literals are indexed 2v (positive) and 2v+1 (negative).
type cdcl struct {
	nvars   int
	clauses [][]int // clause database, literals in DIMACS form
	watches [][]int // watches[lit index] = clause ids watching that literal

	assign []int8 // 0 unassigned, +1 true, -1 false
	level  []int  // decision level per variable
	reason []int  // clause id that implied the variable, -1 for decisions
	trail  []int  // assigned literals in order
	limits []int  // trail length at each decision level

	activity []float64
	varInc   float64

	phase []int8 // saved phase per variable

	conflicts    int
	maxConflicts int
}

const noReason = -1

func newCDCL(nvars int, clauses [][]int, maxConflicts int) *cdcl {
	s := &cdcl{
		nvars:        nvars,
		watches:      make([][]int, 2*(nvars+1)),
		assign:       make([]int8, nvars+1),
		level:        make([]int, nvars+1),
		reason:       make([]int, nvars+1),
		activity:     make([]float64, nvars+1),
		phase:        make([]int8, nvars+1),
		varInc:       1,
		maxConflicts: maxConflicts,
	}
	for _, cl := range clauses {
		s.addClause(cl)
	}
	return s
}

func litIndex(lit int) int {
	if lit > 0 {
		return 2 * lit
	}
	return -2*lit + 1
}

// value of a literal under the current assignment: +1 satisfied, -1
// falsified, 0 unassigned.
func (s *cdcl) litValue(lit int) int8 {
	v := lit
	if v < 0 {
		v = -v
	}
	a := s.assign[v]
	if a == 0 {
		return 0
	}
	if (a == 1) == (lit > 0) {
		return 1
	}
	return -1
}

// addClause installs a clause with watches on its first two literals.
// Returns the clause id, or -1 when the clause is empty (unsatisfiable).
func (s *cdcl) addClause(lits []int) int {
	switch len(lits) {
	case 0:
		return -1
	case 1:
		// Watch the single literal twice; propagation handles it.
		id := len(s.clauses)
		s.clauses = append(s.clauses, lits)
		s.watches[litIndex(lits[0])] = append(s.watches[litIndex(lits[0])], id)
		return id
	}
	id := len(s.clauses)
	s.clauses = append(s.clauses, lits)
	s.watches[litIndex(lits[0])] = append(s.watches[litIndex(lits[0])], id)
	s.watches[litIndex(lits[1])] = append(s.watches[litIndex(lits[1])], id)
	return id
}

func (s *cdcl) decisionLevel() int { return len(s.limits) }

// enqueue assigns a literal with a reason; false on immediate conflict.
func (s *cdcl) enqueue(lit, reason int) bool {
	switch s.litValue(lit) {
	case 1:
		return true
	case -1:
		return false
	}
	v := lit
	val := int8(1)
	if lit < 0 {
		v = -lit
		val = -1
	}
	s.assign[v] = val
	s.phase[v] = val
	s.level[v] = s.decisionLevel()
	s.reason[v] = reason
	s.trail = append(s.trail, lit)
	return true
}

// propagate runs unit propagation from the given trail position; it returns
// the id of a conflicting clause, or -1.
func (s *cdcl) propagate(qhead *int) int {
	for *qhead < len(s.trail) {
		lit := s.trail[*qhead]
		*qhead++
		falsified := -lit
		wl := s.watches[litIndex(falsified)]
		kept := wl[:0]
		for wi := 0; wi < len(wl); wi++ {
			id := wl[wi]
			cl := s.clauses[id]
			if len(cl) == 1 {
				if s.litValue(cl[0]) == -1 {
					s.watches[litIndex(falsified)] = append(kept, wl[wi:]...)
					return id
				}
				kept = append(kept, id)
				continue
			}
			// Normalise: watched literal we are processing in slot 1.
			if cl[0] == falsified {
				cl[0], cl[1] = cl[1], cl[0]
			}
			// Clause satisfied by the other watch?
			if s.litValue(cl[0]) == 1 {
				kept = append(kept, id)
				continue
			}
			// Find a replacement watch.
			moved := false
			for k := 2; k < len(cl); k++ {
				if s.litValue(cl[k]) != -1 {
					cl[1], cl[k] = cl[k], cl[1]
					s.watches[litIndex(cl[1])] = append(s.watches[litIndex(cl[1])], id)
					moved = true
					break
				}
			}
			if moved {
				continue // no longer watching `falsified`
			}
			// Unit or conflicting.
			kept = append(kept, id)
			if !s.enqueue(cl[0], id) {
				s.watches[litIndex(falsified)] = append(kept, wl[wi+1:]...)
				return id
			}
		}
		s.watches[litIndex(falsified)] = kept
	}
	return -1
}

func (s *cdcl) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nvars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (with the asserting literal first) and the backjump level.
func (s *cdcl) analyze(conflict int) ([]int, int) {
	learned := []int{0} // slot 0 reserved for the asserting literal
	seen := make(map[int]bool)
	counter := 0
	var p int
	reason := s.clauses[conflict]
	idx := len(s.trail) - 1

	for {
		for _, q := range reason {
			if p != 0 && q == -p {
				continue
			}
			v := q
			if v < 0 {
				v = -v
			}
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Find the next seen literal on the trail at the current level.
		for {
			p = s.trail[idx]
			idx--
			pv := p
			if pv < 0 {
				pv = -pv
			}
			if seen[pv] {
				seen[pv] = false
				counter--
				if counter == 0 {
					learned[0] = -p
					goto done
				}
				if s.reason[pv] == noReason {
					// Shouldn't happen before counter hits 0, but guard.
					learned[0] = -p
					goto done
				}
				reason = s.clauses[s.reason[pv]]
				break
			}
		}
	}
done:
	// Backjump level = max level among the other literals.
	bj := 0
	for _, q := range learned[1:] {
		v := q
		if v < 0 {
			v = -v
		}
		if s.level[v] > bj {
			bj = s.level[v]
		}
	}
	return learned, bj
}

// cancelUntil undoes assignments above the given level.
func (s *cdcl) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	limit := s.limits[lvl]
	for i := len(s.trail) - 1; i >= limit; i-- {
		lit := s.trail[i]
		v := lit
		if v < 0 {
			v = -v
		}
		s.assign[v] = 0
		s.reason[v] = noReason
	}
	s.trail = s.trail[:limit]
	s.limits = s.limits[:lvl]
}

// pickBranch selects the unassigned variable with the highest activity.
func (s *cdcl) pickBranch() int {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nvars; v++ {
		if s.assign[v] == 0 && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int) int {
	for k := 1; ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i >= 1<<(k-1) && i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// solve runs the CDCL main loop.
func (s *cdcl) solve() (satStatus, []int8) {
	qhead := 0
	// Top-level propagation of unit clauses.
	for id, cl := range s.clauses {
		if len(cl) == 1 {
			if !s.enqueue(cl[0], id) {
				return satUnsat, nil
			}
		}
	}
	if s.propagate(&qhead) >= 0 {
		return satUnsat, nil
	}

	restartIdx := 1
	conflictsAtRestart := 0
	restartBudget := 32 * luby(restartIdx)

	for {
		conflict := s.propagate(&qhead)
		if conflict >= 0 {
			s.conflicts++
			conflictsAtRestart++
			if s.conflicts > s.maxConflicts {
				return satUnknown, nil
			}
			if s.decisionLevel() == 0 {
				return satUnsat, nil
			}
			learned, bj := s.analyze(conflict)
			s.cancelUntil(bj)
			qhead = len(s.trail)
			id := s.addClause(learned)
			if !s.enqueue(learned[0], id) {
				return satUnsat, nil
			}
			s.varInc /= 0.95
			continue
		}
		// Restart?
		if conflictsAtRestart >= restartBudget {
			restartIdx++
			restartBudget = 32 * luby(restartIdx)
			conflictsAtRestart = 0
			s.cancelUntil(0)
			qhead = len(s.trail)
			continue
		}
		v := s.pickBranch()
		if v == 0 {
			return satSat, append([]int8(nil), s.assign...)
		}
		s.limits = append(s.limits, len(s.trail))
		lit := v
		if s.phase[v] == -1 {
			lit = -v
		}
		s.enqueue(lit, noReason)
	}
}

// ensureVars grows the solver's variable arrays to accommodate variables up
// to n; the incremental Context interns new atoms and Tseitin auxiliaries
// between checks, so the instance must widen without losing learned state.
func (s *cdcl) ensureVars(n int) {
	if n <= s.nvars {
		return
	}
	grow := n + 1 - len(s.assign)
	if grow > 0 {
		s.assign = append(s.assign, make([]int8, grow)...)
		s.level = append(s.level, make([]int, grow)...)
		s.reason = append(s.reason, make([]int, grow)...)
		s.activity = append(s.activity, make([]float64, grow)...)
		s.phase = append(s.phase, make([]int8, grow)...)
	}
	for gw := 2*(n+1) - len(s.watches); gw > 0; gw-- {
		s.watches = append(s.watches, nil)
	}
	s.nvars = n
}

// solveAssume runs the CDCL loop under a sequence of assumption literals,
// keeping the clause database — including clauses learned on earlier calls —
// for the next invocation. Assumptions are decided first, in order, as
// decisions without reasons; a falsified assumption means the database is
// unsatisfiable under the assumptions. budget bounds the conflicts of this
// call only. On every exit the trail is rewound to level 0, so the instance
// is immediately reusable.
func (s *cdcl) solveAssume(assumps []int, budget int) (satStatus, []int8) {
	s.cancelUntil(0)
	qhead := 0
	// Top-level propagation of unit clauses, including ones added since the
	// previous call. Re-propagating the level-0 trail from position 0 also
	// wakes any new clause that is already unit under the trail.
	for id, cl := range s.clauses {
		if len(cl) == 1 {
			if !s.enqueue(cl[0], id) {
				return satUnsat, nil
			}
		}
	}
	if s.propagate(&qhead) >= 0 {
		return satUnsat, nil
	}

	limit := s.conflicts + budget
	restartIdx := 1
	conflictsAtRestart := 0
	restartBudget := 32 * luby(restartIdx)

	for {
		conflict := s.propagate(&qhead)
		if conflict >= 0 {
			s.conflicts++
			conflictsAtRestart++
			if s.conflicts > limit {
				s.cancelUntil(0)
				return satUnknown, nil
			}
			if s.decisionLevel() == 0 {
				return satUnsat, nil
			}
			learned, bj := s.analyze(conflict)
			s.cancelUntil(bj)
			qhead = len(s.trail)
			id := s.addClause(learned)
			if !s.enqueue(learned[0], id) {
				s.cancelUntil(0)
				return satUnsat, nil
			}
			s.varInc /= 0.95
			continue
		}
		// Restart?
		if conflictsAtRestart >= restartBudget {
			restartIdx++
			restartBudget = 32 * luby(restartIdx)
			conflictsAtRestart = 0
			s.cancelUntil(0)
			qhead = len(s.trail)
			continue
		}
		// Decide pending assumptions before any free decision.
		if dl := s.decisionLevel(); dl < len(assumps) {
			a := assumps[dl]
			switch s.litValue(a) {
			case 1:
				// Already satisfied: open an empty decision level so the
				// assumption index keeps advancing.
				s.limits = append(s.limits, len(s.trail))
			case -1:
				s.cancelUntil(0)
				return satUnsat, nil
			default:
				s.limits = append(s.limits, len(s.trail))
				s.enqueue(a, noReason)
			}
			continue
		}
		v := s.pickBranch()
		if v == 0 {
			model := append([]int8(nil), s.assign...)
			s.cancelUntil(0)
			return satSat, model
		}
		s.limits = append(s.limits, len(s.trail))
		lit := v
		if s.phase[v] == -1 {
			lit = -v
		}
		s.enqueue(lit, noReason)
	}
}

// solveCDCL is the package entry point matching solveSAT's contract.
func solveCDCL(nvars int, clauses [][]int, maxConflicts int) (satStatus, []int8) {
	// Copy clauses: the solver reorders literals in place for watching.
	db := make([][]int, len(clauses))
	for i, cl := range clauses {
		db[i] = append([]int(nil), cl...)
	}
	s := newCDCL(nvars, db, maxConflicts)
	return s.solve()
}
