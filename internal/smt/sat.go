package smt

import (
	"consolidation/internal/logic"
)

// cnfBuilder performs a Tseitin encoding of a formula into CNF. Variables
// are 1-based; literals are ±var. Each distinct atom (by interned node)
// gets one variable; composite subformulas get auxiliary variables.
type cnfBuilder struct {
	in      *logic.Interner
	nvars   int
	clauses [][]int
	atomVar map[logic.NodeID]int
	varAtom map[int]logic.NodeID
}

func newCNFBuilder(in *logic.Interner) *cnfBuilder {
	return &cnfBuilder{in: in, atomVar: map[logic.NodeID]int{}, varAtom: map[int]logic.NodeID{}}
}

func (b *cnfBuilder) fresh() int {
	b.nvars++
	return b.nvars
}

func (b *cnfBuilder) addClause(lits ...int) {
	b.clauses = append(b.clauses, lits)
}

// encode returns a literal equisatisfiably representing f.
func (b *cnfBuilder) encode(f logic.Formula) int {
	switch x := f.(type) {
	case logic.FTrue:
		v := b.fresh()
		b.addClause(v)
		return v
	case logic.FFalse:
		v := b.fresh()
		b.addClause(-v)
		return v
	case logic.FAtom:
		k := b.in.InternFormula(x)
		if v, ok := b.atomVar[k]; ok {
			return v
		}
		v := b.fresh()
		b.atomVar[k] = v
		b.varAtom[v] = k
		return v
	case logic.FNot:
		return -b.encode(x.F)
	case logic.FAnd:
		v := b.fresh()
		all := make([]int, 0, len(x.Fs)+1)
		for _, g := range x.Fs {
			lg := b.encode(g)
			b.addClause(-v, lg)
			all = append(all, -lg)
		}
		all = append(all, v)
		b.addClause(all...)
		return v
	case logic.FOr:
		v := b.fresh()
		all := make([]int, 0, len(x.Fs)+1)
		for _, g := range x.Fs {
			lg := b.encode(g)
			b.addClause(v, -lg)
			all = append(all, lg)
		}
		all = append(all, -v)
		b.addClause(all...)
		return v
	}
	panic("smt: unknown formula")
}

type satStatus int

const (
	satUnsat satStatus = iota
	satSat
	satUnknown
)

// solveSAT is a DPLL SAT solver with unit propagation and chronological
// backtracking; adequate because consolidation queries are conjunctions of
// literals with little boolean structure. The decision budget turns
// pathological instances into satUnknown.
func solveSAT(nvars int, clauses [][]int, maxDecisions int) (satStatus, []int8) {
	assign := make([]int8, nvars+1)
	decisions := 0
	var rec func() satStatus
	propagate := func(trail *[]int) bool {
		for {
			changed := false
			for _, cl := range clauses {
				unassigned := 0
				last := 0
				satisfied := false
				for _, lit := range cl {
					v := lit
					if v < 0 {
						v = -v
					}
					a := assign[v]
					switch {
					case a == 0:
						unassigned++
						last = lit
					case (a == 1) == (lit > 0):
						satisfied = true
					}
					if satisfied {
						break
					}
				}
				if satisfied {
					continue
				}
				if unassigned == 0 {
					return false // conflict
				}
				if unassigned == 1 {
					v := last
					if v < 0 {
						assign[-v] = -1
						*trail = append(*trail, -v)
					} else {
						assign[v] = 1
						*trail = append(*trail, v)
					}
					changed = true
				}
			}
			if !changed {
				return true
			}
		}
	}
	rec = func() satStatus {
		var trail []int
		if !propagate(&trail) {
			for _, v := range trail {
				assign[v] = 0
			}
			return satUnsat
		}
		// Pick an unassigned variable.
		pick := 0
		for v := 1; v <= nvars; v++ {
			if assign[v] == 0 {
				pick = v
				break
			}
		}
		if pick == 0 {
			return satSat
		}
		decisions++
		if decisions > maxDecisions {
			for _, v := range trail {
				assign[v] = 0
			}
			return satUnknown
		}
		for _, val := range []int8{1, -1} {
			assign[pick] = val
			st := rec()
			if st == satSat || st == satUnknown {
				if st == satUnknown {
					for _, v := range trail {
						assign[v] = 0
					}
					assign[pick] = 0
				}
				return st
			}
			assign[pick] = 0
		}
		for _, v := range trail {
			assign[v] = 0
		}
		return satUnsat
	}
	st := rec()
	if st != satSat {
		return st, nil
	}
	return satSat, assign
}
