package smt

import (
	"fmt"
	"testing"

	"consolidation/internal/logic"
)

// The regressions below pin a combination bug found by the oracle's golden
// replay: equalities forced by *arithmetic* atoms (x − y = 0) must reach
// congruence closure, or f(x) ≠ f(y) is wrongly judged satisfiable. The old
// Nelson–Oppen probe loop walked candidate pairs in map-iteration order
// under a tiny budget and answered Sat when the budget ran out, so the
// verdict flipped between Unsat and a wrong Sat across processes.

func noVar(n string) logic.Term { return logic.TVar{Name: n} }
func noApp(f string, args ...logic.Term) logic.Term {
	return logic.TApp{Func: f, Args: args}
}
func noSub(a, b logic.Term) logic.Term {
	return logic.TBin{Op: logic.Sub, L: a, R: b}
}

// chainFormula is the minimal unsat shape:
// x−y=0 ∧ y−z=0 ∧ u=f(x) ∧ ¬(u=f(z)).
func chainFormula() logic.Formula {
	x, y, z, u := noVar("x"), noVar("y"), noVar("z"), noVar("u")
	zero := logic.TConst{Value: 0}
	return logic.And(
		logic.EqT(noSub(x, y), zero),
		logic.EqT(noSub(y, z), zero),
		logic.EqT(u, noApp("f", x)),
		logic.Not(logic.EqT(u, noApp("f", z))),
	)
}

// TestArithEqualityReachesCongruence: the minimal shape must always be
// Unsat — it is well inside every budget.
func TestArithEqualityReachesCongruence(t *testing.T) {
	for i := 0; i < 20; i++ {
		if r := New().Check(chainFormula()); r != Unsat {
			t.Fatalf("run %d: got %v, want unsat", i, r)
		}
	}
}

// TestTraceHook: the diagnostic hook observes every Check with its
// verdict and cache provenance — it is how per-query verdict streams are
// compared when hunting determinism bugs like the one above.
func TestTraceHook(t *testing.T) {
	s := New()
	type obs struct {
		f      string
		r      Result
		cached bool
	}
	var got []obs
	s.Trace = func(f logic.Formula, r Result, cached bool) {
		got = append(got, obs{f.String(), r, cached})
	}
	f := chainFormula()
	r1 := s.Check(f)
	r2 := s.Check(f) // second check must come from the cache
	if r1 != Unsat || r2 != Unsat {
		t.Fatalf("verdicts: %v, %v", r1, r2)
	}
	if len(got) != 2 {
		t.Fatalf("trace observed %d checks, want 2", len(got))
	}
	if got[0].cached || !got[1].cached {
		t.Fatalf("cache provenance wrong: %+v", got)
	}
	if got[0].f != f.String() || got[0].r != Unsat || got[1].r != Unsat {
		t.Fatalf("trace content wrong: %+v", got)
	}
}

// TestNelsonOppenBudgetSoundAndDeterministic drowns the probe budget in
// decoy function applications whose arguments coincide in the arithmetic
// model but are not forced equal. Whatever the budget decides, the solver
// must (a) never answer Sat — the formula is unsat — and (b) answer the
// same thing from every fresh solver, since consolidation's golden replay
// depends on verdicts being a function of the formula alone.
func TestNelsonOppenBudgetSoundAndDeterministic(t *testing.T) {
	fs := []logic.Formula{chainFormula()}
	for i := 0; i < 80; i++ {
		fs = append(fs, logic.EqT(noVar(fmt.Sprintf("d%d", i)), noApp("g", noVar(fmt.Sprintf("v%d", i)))))
	}
	f := logic.And(fs...)

	first := New().Check(f)
	if first == Sat {
		t.Fatalf("got sat for an unsat formula")
	}
	for i := 0; i < 50; i++ {
		if r := New().Check(f); r != first {
			t.Fatalf("run %d: verdict flipped %v -> %v across fresh solvers", i, first, r)
		}
	}
}
