// Package registry is the query-lifecycle subsystem of the streaming
// engine: it owns the divide-and-conquer merge tree that consolidate.All
// produces and keeps a consolidated program live while UDFs are added and
// removed by subscribers.
//
// The paper consolidates a fixed batch of programs offline; a service
// re-running All over all N programs on every subscription change would
// waste exactly the work the divide-and-conquer tree already did. The
// registry instead re-consolidates only the O(log N) merge nodes whose
// leaf span changed — every sibling subtree is reused from a content-keyed
// node cache, and the shared smt.Cache answers the re-proved entailments —
// while a background worker batches bursts of changes (debounce window
// bounded by a max lag), so a storm of subscriptions triggers one
// re-consolidation, not fifty.
//
// Between a change and the next completed rebuild the registry stays
// *live* through generation-numbered snapshots: the stale consolidated
// program keeps running, queries added since the last build run verbatim
// alongside it (sound: verbatim is exactly sequential execution, the work
// bound of DESIGN.md's work-bounds extension), and queries removed since
// are suppressed by id. The engine's WhereRegistry operator picks up a new
// generation atomically at a record boundary, so no record is dropped or
// double-notified during a swap.
//
// Slots use swap-remove: removing a query moves the last leaf into its
// slot, so a removal dirties two root paths instead of shifting every
// later leaf. The surviving set's order is therefore registry-defined;
// Programs() exposes it, and after Flush the consolidated program is
// byte-identical to consolidate.All run from scratch over Programs().
package registry

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"consolidation/internal/consolidate"
	"consolidation/internal/lang"
	"consolidation/internal/prefilter"
	"consolidation/internal/smt"
)

// QueryID is the stable handle of one subscribed query. Ids are never
// reused, which is what lets the merge-node cache key nodes by content.
type QueryID uint64

// Options configures a Registry.
type Options struct {
	// Consolidate are the base consolidation options. Cache is shared
	// across all rebuilds (nil creates one); Solver must be nil — the
	// registry runs pair workers in parallel against the shared cache.
	Consolidate consolidate.Options
	// Debounce is the quiet window the background worker waits after a
	// change before re-consolidating, so bursts coalesce into one rebuild.
	// Zero (or negative) disables the worker: the registry still publishes
	// delta snapshots on every change, but rebuilds only when the caller
	// invokes Rebuild or Flush — the mode cmd/live uses to time each one.
	Debounce time.Duration
	// MaxLag bounds how long a change may wait while further changes keep
	// resetting the debounce window; 0 means 8×Debounce.
	MaxLag time.Duration
	// Workers bounds concurrent pair re-merges during a rebuild; 0 means
	// GOMAXPROCS.
	Workers int
	// Prefilter, when non-nil, makes every rebuild synthesize an admission
	// pre-filter for the consolidated program and publish it with the
	// snapshot (Snapshot.Guard). Callers typically set Coster to the
	// dataset and MaxCallCost to its lite-decode bound; a nil Cache/Solver
	// is backed by the registry's shared SMT cache. Delta snapshots carry
	// the stale guard forward — sound, because the guard gates only the
	// unchanged Merged program, and pending queries always run verbatim.
	Prefilter *prefilter.Options
}

// PendingQuery is a query added after the current consolidated program was
// built; the engine runs it verbatim alongside the stale program until the
// next generation lands.
type PendingQuery struct {
	ID       QueryID
	Program  *lang.Program
	Compiled *lang.Compiled
	// NotifyID is the id the verbatim program broadcasts (its own,
	// pre-renumbering id).
	NotifyID int
}

// BuildStats describes one incremental rebuild.
type BuildStats struct {
	Duration time.Duration
	// Leaves is the number of live queries consolidated.
	Leaves int
	// PairsMerged counts pairwise merges actually recomputed;
	// NodesReused counts merge nodes served from the tree cache. A clean
	// incremental rebuild after one change recomputes O(log N) pairs.
	PairsMerged int
	NodesReused int
	SMTQueries  int
	// CacheHitRate is the shared SMT cache's hit rate during this build.
	CacheHitRate float64
	// VerbatimFallbacks counts Ω fuel exhaustions (degraded plan; see
	// consolidate.MultiStats.VerbatimFallbacks).
	VerbatimFallbacks int
	Rules             consolidate.Stats
	// Context aggregates the per-merge-node incremental solving contexts
	// over the pairs this build recomputed. Contexts persist across
	// rebuilds keyed by tree span, so a node re-merged after a nearby
	// change reuses its Tseitin encodings and learned clauses.
	Context smt.ContextStats
	// PrefilterTime is the time guard synthesis took (zero when disabled);
	// GuardTrivial reports whether it degraded to the admit-all guard and
	// GuardCost the static per-record cost of the synthesized guard.
	PrefilterTime time.Duration
	GuardTrivial  bool
	GuardCost     int64
}

// Snapshot is one published generation: an immutable view the engine can
// evaluate records against. A snapshot is *clean* when it reflects exactly
// the live query set; after a change and before the next rebuild it is a
// stale consolidated program plus a pending/removed delta that keeps the
// notification set exact.
type Snapshot struct {
	// Gen increases with every published snapshot (delta or rebuild).
	Gen uint64
	// Merged is the consolidated program over the built query set, with
	// notification ids renumbered to slot positions; nil when the built
	// set was empty. Compiled is its slot-compiled form.
	Merged   *lang.Program
	Compiled *lang.Compiled
	// Slots maps the merged program's notification ids (slot positions at
	// build time) to query ids.
	Slots []QueryID
	// Guard is the admission pre-filter synthesized for Merged (nil when
	// Options.Prefilter is unset or the built set was empty). It remains
	// valid on delta snapshots: it gates only Merged, which deltas share,
	// while Pending queries bypass it by running verbatim.
	Guard *prefilter.Guard
	// Pending queries joined after Merged was built and run verbatim.
	Pending []PendingQuery
	// Removed marks built queries that have since unsubscribed; their
	// notifications must be suppressed.
	Removed map[QueryID]bool
	// Build describes the rebuild that produced Merged.
	Build BuildStats
}

// Clean reports whether the snapshot reflects exactly the live set.
func (s *Snapshot) Clean() bool { return len(s.Pending) == 0 && len(s.Removed) == 0 }

// RunnerKeep returns the compiled programs this generation executes — the
// merged program, its admission guard, and the verbatim pending queries.
// An engine caching runners per compiled program keeps exactly these
// across a swap and drops the rest.
func (s *Snapshot) RunnerKeep() []*lang.Compiled {
	keep := make([]*lang.Compiled, 0, 2+len(s.Pending))
	if s.Compiled != nil {
		keep = append(keep, s.Compiled)
	}
	if s.Guard != nil && s.Guard.Compiled != nil {
		keep = append(keep, s.Guard.Compiled)
	}
	for _, p := range s.Pending {
		keep = append(keep, p.Compiled)
	}
	return keep
}

// LiveIDs returns the query ids subscribed in this generation, i.e. the
// built slots minus Removed plus Pending.
func (s *Snapshot) LiveIDs() []QueryID {
	out := make([]QueryID, 0, len(s.Slots)+len(s.Pending))
	for _, id := range s.Slots {
		if !s.Removed[id] {
			out = append(out, id)
		}
	}
	for _, p := range s.Pending {
		out = append(out, p.ID)
	}
	return out
}

// Stats summarises registry activity.
type Stats struct {
	Gen     uint64
	Size    int
	Adds    uint64
	Removes uint64
	Builds  uint64
	// PairsMerged / NodesReused accumulate over all rebuilds.
	PairsMerged    uint64
	NodesReused    uint64
	TotalBuildTime time.Duration
	LastBuild      BuildStats
	// CachedNodes is the current merge-node cache size (≈ N after a clean
	// rebuild; sibling programs kept for the next incremental pass).
	CachedNodes int
}

type entry struct {
	id       QueryID
	src      *lang.Program
	compiled *lang.Compiled
	notifyID int
}

// span identifies a merge-tree node by the leaf range it covers. Spans are
// positional, not content-keyed: after a change the node at the same
// position re-merges mostly-unchanged programs, which is exactly when a
// persistent solving context's memos pay off.
type span struct{ lo, hi int }

type preparedLeaf struct {
	slot int
	prog *lang.Program
}

// Registry is the live consolidation subsystem. All methods are safe for
// concurrent use. Programs handed to Add must not be mutated afterwards.
type Registry struct {
	opts  Options
	cache *smt.Cache

	mu           sync.Mutex // guards the fields below
	entries      []entry    // slot order; the surviving set
	slotOf       map[QueryID]int
	nextID       QueryID
	version      uint64 // bumped on every Add/Remove
	builtVersion uint64 // version the published Merged reflects
	gen          uint64
	lastErr      error
	stats        Stats

	snap atomic.Pointer[Snapshot]

	// buildMu serialises rebuilds; the merge-node, prepared-leaf and
	// solving-context caches below are touched only under it (the builder
	// additionally guards them with its own mutex during a build's
	// parallel fan-out).
	buildMu sync.Mutex
	nodes   map[nodeKey]*lang.Program
	// seqs interns the query-id sequences that key merge nodes; it persists
	// across builds so an unchanged span keeps its key (and its cache hit)
	// from one build to the next.
	seqs *seqTable
	prep map[QueryID]preparedLeaf
	// sctxs holds one persistent solving context per merge-tree span.
	// Distinct spans re-merge in distinct goroutines, but a span is only
	// ever touched by its own pair worker within a build, and buildMu
	// serialises builds — so each context sees strictly sequential use.
	sctxs map[span]*smt.Context

	kick      chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New creates a registry. Close must be called to stop the background
// worker when Debounce is positive.
func New(opts Options) (*Registry, error) {
	if opts.Consolidate.Solver != nil {
		return nil, fmt.Errorf("registry: Options.Consolidate.Solver is not supported; share a Cache instead")
	}
	// Remaining consolidation options default inside consolidate.New,
	// identically to what All applies per pair.
	if opts.Consolidate.Cache == nil {
		opts.Consolidate.Cache = smt.NewCache(0)
	}
	if opts.MaxLag <= 0 {
		opts.MaxLag = 8 * opts.Debounce
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	r := &Registry{
		opts:   opts,
		cache:  opts.Consolidate.Cache,
		slotOf: map[QueryID]int{},
		nextID: 1,
		nodes:  map[nodeKey]*lang.Program{},
		seqs:   newSeqTable(),
		prep:   map[QueryID]preparedLeaf{},
		sctxs:  map[span]*smt.Context{},
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	r.snap.Store(&Snapshot{})
	if opts.Debounce > 0 {
		r.wg.Add(1)
		go r.worker()
	}
	return r, nil
}

// Close stops the background worker. The last published snapshot remains
// readable.
func (r *Registry) Close() {
	r.closeOnce.Do(func() { close(r.done) })
	r.wg.Wait()
}

// Snapshot returns the current generation. The engine loads it once per
// admitted record; the returned value is immutable.
func (r *Registry) Snapshot() *Snapshot { return r.snap.Load() }

// Size reports the number of live queries.
func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Programs returns the surviving query programs in registry slot order —
// the set and order a from-scratch consolidate.All must be given to
// reproduce the registry's consolidated program byte for byte.
func (r *Registry) Programs() []*lang.Program {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*lang.Program, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.src
	}
	return out
}

// LastErr returns the most recent rebuild error, if any.
func (r *Registry) LastErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// Stats snapshots registry counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	s := r.stats
	s.Gen = r.gen
	s.Size = len(r.entries)
	r.mu.Unlock()
	r.buildMu.Lock()
	s.CachedNodes = len(r.nodes)
	r.buildMu.Unlock()
	return s
}

// Add subscribes a query: the program joins the live set immediately (a
// delta snapshot runs it verbatim from the next admitted record on) and a
// re-consolidation folding it into the merged program is scheduled.
func (r *Registry) Add(p *lang.Program) (QueryID, error) {
	if p == nil {
		return 0, fmt.Errorf("registry: nil program")
	}
	ids := lang.NotifyIDs(p.Body)
	if len(ids) != 1 {
		return 0, fmt.Errorf("registry: query %s must notify exactly one id, has %d", p.Name, len(ids))
	}
	notifyID := 0
	for id := range ids {
		notifyID = id
	}
	for _, prm := range p.Params {
		if lang.AssignedVars(p.Body)[prm] {
			return 0, fmt.Errorf("registry: query %s assigns parameter %q", p.Name, prm)
		}
	}
	compiled, err := lang.Compile(p)
	if err != nil {
		return 0, fmt.Errorf("registry: compiling %s: %w", p.Name, err)
	}

	r.mu.Lock()
	if len(r.entries) > 0 {
		have := r.entries[0].src.Params
		if len(have) != len(p.Params) {
			r.mu.Unlock()
			return 0, fmt.Errorf("registry: query %s takes %d parameters, registry uses %d", p.Name, len(p.Params), len(have))
		}
		for i := range have {
			if have[i] != p.Params[i] {
				r.mu.Unlock()
				return 0, fmt.Errorf("registry: parameter mismatch %q vs %q", p.Params[i], have[i])
			}
		}
	}
	id := r.nextID
	r.nextID++
	e := entry{id: id, src: p, compiled: compiled, notifyID: notifyID}
	r.slotOf[id] = len(r.entries)
	r.entries = append(r.entries, e)
	r.version++
	r.stats.Adds++

	cur := r.snap.Load()
	next := *cur
	next.Pending = append(append([]PendingQuery(nil), cur.Pending...), PendingQuery{
		ID: id, Program: p, Compiled: compiled, NotifyID: notifyID,
	})
	r.gen++
	next.Gen = r.gen
	r.snap.Store(&next)
	r.mu.Unlock()

	r.schedule()
	return id, nil
}

// Remove unsubscribes a query: its notifications stop with the next
// admitted record (delta snapshot) and a re-consolidation dropping it from
// the merged program is scheduled. The last leaf is swapped into the freed
// slot, so only two leaf-to-root paths need re-merging.
func (r *Registry) Remove(id QueryID) error {
	r.mu.Lock()
	slot, ok := r.slotOf[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("registry: unknown query id %d", id)
	}
	last := len(r.entries) - 1
	if slot != last {
		r.entries[slot] = r.entries[last]
		r.slotOf[r.entries[slot].id] = slot
	}
	r.entries = r.entries[:last]
	delete(r.slotOf, id)
	r.version++
	r.stats.Removes++

	cur := r.snap.Load()
	next := *cur
	wasPending := false
	for _, p := range cur.Pending {
		if p.ID == id {
			wasPending = true
			break
		}
	}
	if wasPending {
		next.Pending = make([]PendingQuery, 0, len(cur.Pending)-1)
		for _, p := range cur.Pending {
			if p.ID != id {
				next.Pending = append(next.Pending, p)
			}
		}
	} else {
		next.Removed = make(map[QueryID]bool, len(cur.Removed)+1)
		for k := range cur.Removed {
			next.Removed[k] = true
		}
		next.Removed[id] = true
	}
	r.gen++
	next.Gen = r.gen
	r.snap.Store(&next)
	r.mu.Unlock()

	r.schedule()
	return nil
}

// schedule kicks the background worker; a kick already pending coalesces.
func (r *Registry) schedule() {
	if r.opts.Debounce <= 0 {
		return
	}
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// worker batches change bursts: after a kick it waits for a Debounce-long
// quiet window — restarting it on further kicks, but never past MaxLag
// from the first — then rebuilds once.
func (r *Registry) worker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case <-r.kick:
		}
		first := time.Now()
		quiet := time.NewTimer(r.opts.Debounce)
	debounce:
		for {
			select {
			case <-r.done:
				quiet.Stop()
				return
			case <-r.kick:
				if time.Since(first) >= r.opts.MaxLag {
					break debounce
				}
				if !quiet.Stop() {
					select {
					case <-quiet.C:
					default:
					}
				}
				quiet.Reset(r.opts.Debounce)
			case <-quiet.C:
				break debounce
			}
		}
		quiet.Stop()
		r.Rebuild() //nolint:errcheck // recorded in lastErr; next change retries
	}
}

// Rebuild re-consolidates the live set now and publishes the result. Only
// merge nodes whose leaf span changed since the cached tree are
// recomputed. If queries changed concurrently during the build, the
// published snapshot carries the residual delta and another rebuild is
// scheduled.
func (r *Registry) Rebuild() (*Snapshot, error) {
	r.buildMu.Lock()
	defer r.buildMu.Unlock()

	r.mu.Lock()
	ents := append([]entry(nil), r.entries...)
	v := r.version
	r.mu.Unlock()

	start := time.Now()
	pre := r.cache.Stats()
	var root *lang.Program
	var compiled *lang.Compiled
	bs := BuildStats{Leaves: len(ents)}
	if len(ents) == 0 {
		// Registry drained: the caches hold nothing reusable.
		r.nodes = map[nodeKey]*lang.Program{}
		r.prep = map[QueryID]preparedLeaf{}
		r.sctxs = map[span]*smt.Context{}
	} else {
		b := r.newBuilder(ents)
		raw, err := b.run()
		if err == nil && !r.opts.Consolidate.NoDCE {
			raw = consolidate.FinalCleanup(raw)
		}
		if err == nil {
			root = raw
			compiled, err = lang.Compile(root)
		}
		if err != nil {
			r.mu.Lock()
			r.lastErr = err
			r.mu.Unlock()
			return nil, err
		}
		bs = b.stats
		b.prune()
	}
	post := r.cache.Stats()
	if lk := post.Lookups - pre.Lookups; lk > 0 {
		bs.CacheHitRate = float64(post.Hits-pre.Hits) / float64(lk)
	}

	// Re-synthesize the admission guard for the new consolidated program.
	// This runs on every generation swap: a guard is only meaningful for
	// the exact Merged it was derived from.
	var guard *prefilter.Guard
	if r.opts.Prefilter != nil && root != nil {
		t0 := time.Now()
		popts := *r.opts.Prefilter
		if popts.Solver == nil && popts.Cache == nil {
			popts.Cache = r.cache
		}
		guard = prefilter.Synthesize(root, popts)
		bs.PrefilterTime = time.Since(t0)
		bs.GuardTrivial = guard.Trivial
		bs.GuardCost = guard.Cost
	}
	bs.Duration = time.Since(start)

	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &Snapshot{
		Merged:   root,
		Compiled: compiled,
		Slots:    make([]QueryID, len(ents)),
		Guard:    guard,
		Build:    bs,
	}
	built := make(map[QueryID]bool, len(ents))
	for i, e := range ents {
		snap.Slots[i] = e.id
		built[e.id] = true
	}
	// Changes that raced the build become the new snapshot's delta.
	live := make(map[QueryID]bool, len(r.entries))
	for _, e := range r.entries {
		live[e.id] = true
		if !built[e.id] {
			snap.Pending = append(snap.Pending, PendingQuery{
				ID: e.id, Program: e.src, Compiled: e.compiled, NotifyID: e.notifyID,
			})
		}
	}
	for _, e := range ents {
		if !live[e.id] {
			if snap.Removed == nil {
				snap.Removed = map[QueryID]bool{}
			}
			snap.Removed[e.id] = true
		}
	}
	r.gen++
	snap.Gen = r.gen
	r.snap.Store(snap)
	r.builtVersion = v
	r.lastErr = nil
	r.stats.Builds++
	r.stats.PairsMerged += uint64(bs.PairsMerged)
	r.stats.NodesReused += uint64(bs.NodesReused)
	r.stats.TotalBuildTime += bs.Duration
	r.stats.LastBuild = bs
	if v != r.version {
		// More churn arrived while building; catch up in the background.
		defer r.schedule()
	}
	return snap, nil
}

// Flush rebuilds until the published snapshot reflects the live set and
// returns that clean snapshot. With no concurrent churn one rebuild
// suffices.
func (r *Registry) Flush() (*Snapshot, error) {
	for {
		r.mu.Lock()
		upToDate := r.builtVersion == r.version
		r.mu.Unlock()
		if upToDate {
			if s := r.Snapshot(); s.Clean() {
				return s, nil
			}
		}
		if _, err := r.Rebuild(); err != nil {
			return nil, err
		}
	}
}

// ---- incremental tree build ----

// builder recomputes the merge tree for one frozen leaf sequence. The
// tree has the exact shape of consolidate.All's level-by-level pairing: a
// node covers leaves [lo, hi) with hi truncated by N, its children split
// at lo+size/2, and an empty right child carries the left child up
// unchanged. Nodes are cached by content — the slot offset plus the query
// ids under the node — so any node whose leaves did not move is reused
// and only changed root paths are re-merged.
type builder struct {
	ents  []entry
	reg   *Registry
	opts  consolidate.Options
	stats BuildStats
	// spanKeys maps every interior node span of this build's tree to its
	// content key. It is filled single-threaded in newBuilder and read-only
	// during the parallel fan-out, so the shared seqTable needs no lock on
	// the hot path.
	spanKeys map[span]nodeKey
	mu       sync.Mutex
	sem      chan struct{}
	failed   atomic.Bool
	firstE   error
}

// nodeKey identifies a merge node by its slot offset and the interned
// sequence of query ids under it — the same content the old text key
// rendered as "lo|id,id,...", without allocating a string per node per
// build. Injective while the seqTable generation lives: hash-consing gives
// each distinct id sequence exactly one seq.
type nodeKey struct {
	lo  int32
	seq int32
}

// seqTable hash-conses sequences of query ids as cons lists: a sequence is
// the id of the pair (head, rest). Shared suffixes share cells, and an
// unchanged span re-interns to the same seq in O(length) map hits.
type seqTable struct {
	pairs map[seqPair]int32
	n     int32
}

type seqPair struct {
	head QueryID
	tail int32
}

// seqTableCap bounds table growth across builds; past it the table and the
// merge-node cache keyed by its ids are dropped together (the next build
// repopulates both from scratch, which is always sound).
const seqTableCap = 1 << 20

func newSeqTable() *seqTable {
	return &seqTable{pairs: map[seqPair]int32{}}
}

func (t *seqTable) cons(head QueryID, tail int32) int32 {
	p := seqPair{head: head, tail: tail}
	if id, ok := t.pairs[p]; ok {
		return id
	}
	t.n++
	t.pairs[p] = t.n
	return t.n
}

// seqOf interns the id sequence of ents, consing right to left so that
// spans sharing a tail share cells. The empty sequence is -1.
func (t *seqTable) seqOf(ents []entry) int32 {
	seq := int32(-1)
	for i := len(ents) - 1; i >= 0; i-- {
		seq = t.cons(ents[i].id, seq)
	}
	return seq
}

func (r *Registry) newBuilder(ents []entry) *builder {
	opts := r.opts.Consolidate
	// As in All: clean-up passes run once on the root, not between levels,
	// or intermediate DCE would destroy the sharing later partners memoize
	// against.
	opts.NoDCE = true
	if len(r.seqs.pairs) > seqTableCap {
		r.seqs = newSeqTable()
		r.nodes = map[nodeKey]*lang.Program{}
	}
	b := &builder{
		ents:     ents,
		reg:      r,
		opts:     opts,
		spanKeys: map[span]nodeKey{},
		sem:      make(chan struct{}, r.opts.Workers),
	}
	b.stats.Leaves = len(ents)
	size := 1
	for size < len(ents) {
		size *= 2
	}
	b.collectSpanKeys(0, len(ents), size)
	return b
}

// collectSpanKeys walks the tree shape and interns the key of every
// interior node, mirroring the recursion of build and collectKeys.
func (b *builder) collectSpanKeys(lo, hi, size int) {
	if hi-lo <= 1 {
		return
	}
	half := size / 2
	mid := lo + half
	if mid >= hi {
		b.collectSpanKeys(lo, hi, half)
		return
	}
	b.spanKeys[span{lo, hi}] = nodeKey{lo: int32(lo), seq: b.reg.seqs.seqOf(b.ents[lo:hi])}
	b.collectSpanKeys(lo, mid, half)
	b.collectSpanKeys(mid, hi, half)
}

func (b *builder) run() (*lang.Program, error) {
	size := 1
	for size < len(b.ents) {
		size *= 2
	}
	root := b.build(0, len(b.ents), size)
	if b.firstE != nil {
		return nil, b.firstE
	}
	return root, nil
}

func (b *builder) build(lo, hi, size int) *lang.Program {
	if b.failed.Load() {
		return nil
	}
	if hi-lo == 1 {
		return b.leaf(lo)
	}
	half := size / 2
	mid := lo + half
	if mid >= hi {
		// Odd leftover: the node is its left child, carried up unchanged.
		return b.build(lo, hi, half)
	}
	k := b.spanKeys[span{lo, hi}]
	b.mu.Lock()
	if p, ok := b.reg.nodes[k]; ok {
		// A hit subsumes the whole subtree: its descendants stay cached
		// (prune walks the tree, so they remain reachable) but need no
		// recursion here.
		b.stats.NodesReused++
		b.mu.Unlock()
		return p
	}
	b.mu.Unlock()

	var right *lang.Program
	done := make(chan struct{})
	go func() {
		defer close(done)
		right = b.build(mid, hi, half)
	}()
	left := b.build(lo, mid, half)
	<-done
	if b.failed.Load() || left == nil || right == nil {
		return nil
	}

	b.sem <- struct{}{}
	opts := b.opts
	if !opts.NoSolvingContext {
		// Check out this span's persistent solving context. Only this pair
		// worker touches it during the build, and buildMu serialises builds.
		b.mu.Lock()
		sc, ok := b.reg.sctxs[span{lo, hi}]
		if !ok {
			sc = smt.NewSolvingContext()
			b.reg.sctxs[span{lo, hi}] = sc
		}
		b.mu.Unlock()
		opts.SolvingContext = sc
	}
	co := consolidate.New(opts)
	merged, err := co.Pair(left, right)
	<-b.sem
	if err != nil {
		b.fail(err)
		return nil
	}
	st := co.Stats()
	b.mu.Lock()
	b.reg.nodes[k] = merged
	b.stats.PairsMerged++
	b.stats.SMTQueries += st.SMTQueries
	b.stats.VerbatimFallbacks += st.FuelExhausted
	b.stats.Context.Add(st.Context)
	addRules(&b.stats.Rules, st)
	b.mu.Unlock()
	return merged
}

// leaf prepares the query at the given slot exactly as All prepares its
// leaves; re-preparations are cached until the query changes slot.
func (b *builder) leaf(slot int) *lang.Program {
	e := b.ents[slot]
	b.mu.Lock()
	if p, ok := b.reg.prep[e.id]; ok && p.slot == slot {
		b.mu.Unlock()
		return p.prog
	}
	b.mu.Unlock()
	prog := consolidate.PrepareLeaf(e.src, slot, true)
	b.mu.Lock()
	b.reg.prep[e.id] = preparedLeaf{slot: slot, prog: prog}
	b.mu.Unlock()
	return prog
}

func (b *builder) fail(err error) {
	b.mu.Lock()
	if b.firstE == nil {
		b.firstE = err
	}
	b.mu.Unlock()
	b.failed.Store(true)
}

// prune drops merge nodes unreachable from the just-built tree and
// prepared leaves of departed queries, keeping both caches O(N). Interior
// nodes under a reused subtree must survive — the next change can land
// inside that subtree — so reachability is computed by walking the tree
// shape, not by recording which nodes the build visited.
func (b *builder) prune() {
	keep := make(map[nodeKey]bool, len(b.ents))
	keepSpan := make(map[span]bool, len(b.ents))
	size := 1
	for size < len(b.ents) {
		size *= 2
	}
	b.collectKeys(0, len(b.ents), size, keep, keepSpan)
	for k := range b.reg.nodes {
		if !keep[k] {
			delete(b.reg.nodes, k)
		}
	}
	for sp := range b.reg.sctxs {
		if !keepSpan[sp] {
			delete(b.reg.sctxs, sp)
		}
	}
	liveID := make(map[QueryID]bool, len(b.ents))
	for _, e := range b.ents {
		liveID[e.id] = true
	}
	for id := range b.reg.prep {
		if !liveID[id] {
			delete(b.reg.prep, id)
		}
	}
}

// collectKeys records the key and span of every merge node of the current
// tree.
func (b *builder) collectKeys(lo, hi, size int, keep map[nodeKey]bool, keepSpan map[span]bool) {
	if hi-lo <= 1 {
		return
	}
	half := size / 2
	mid := lo + half
	if mid >= hi {
		b.collectKeys(lo, hi, half, keep, keepSpan)
		return
	}
	keep[b.spanKeys[span{lo, hi}]] = true
	keepSpan[span{lo, hi}] = true
	b.collectKeys(lo, mid, half, keep, keepSpan)
	b.collectKeys(mid, hi, half, keep, keepSpan)
}

func addRules(dst *consolidate.Stats, s consolidate.Stats) {
	dst.If1 += s.If1
	dst.If2 += s.If2
	dst.If3 += s.If3
	dst.If4 += s.If4
	dst.If5 += s.If5
	dst.Loop2 += s.Loop2
	dst.Loop3 += s.Loop3
	dst.LoopsSequential += s.LoopsSequential
	dst.AssignsSimplified += s.AssignsSimplified
	dst.FuelExhausted += s.FuelExhausted
	dst.SMTQueries += s.SMTQueries
}
