package registry

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"consolidation/internal/consolidate"
	"consolidation/internal/lang"
	"consolidation/internal/queries"
)

// scratch consolidates the registry's surviving set from scratch, exactly
// as a batch caller would: fresh options, fresh cache, renumbered ids.
func scratch(t *testing.T, progs []*lang.Program) *lang.Program {
	t.Helper()
	merged, _, err := consolidate.All(progs, consolidate.DefaultOptions(), true, true)
	if err != nil {
		t.Fatalf("from-scratch All: %v", err)
	}
	return merged
}

// TestIncrementalEquivalence is the tentpole property: after any seeded
// sequence of Add/Remove operations, the registry's consolidated program
// is byte-identical to consolidate.All run from scratch on the surviving
// set. Runs in CI under -race.
func TestIncrementalEquivalence(t *testing.T) {
	pool := queries.MustGen("flight", "Q1", 40, 7)
	rng := rand.New(rand.NewSource(11))

	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var live []QueryID
	next := 0
	add := func() {
		id, err := r.Add(pool[next%len(pool)])
		if err != nil {
			t.Fatal(err)
		}
		next++
		live = append(live, id)
	}
	remove := func() {
		i := rng.Intn(len(live))
		if err := r.Remove(live[i]); err != nil {
			t.Fatal(err)
		}
		live = append(live[:i], live[i+1:]...)
	}

	for i := 0; i < 10; i++ {
		add()
	}
	check := func(step string) {
		snap, err := r.Flush()
		if err != nil {
			t.Fatalf("%s: flush: %v", step, err)
		}
		if !snap.Clean() {
			t.Fatalf("%s: flushed snapshot not clean", step)
		}
		progs := r.Programs()
		if len(progs) == 0 {
			if snap.Merged != nil {
				t.Fatalf("%s: empty registry kept a merged program", step)
			}
			return
		}
		want := lang.Format(scratch(t, progs))
		if got := lang.Format(snap.Merged); got != want {
			t.Fatalf("%s: registry output differs from from-scratch All\n--- registry ---\n%s\n--- scratch ---\n%s",
				step, got, want)
		}
		if len(snap.Slots) != len(progs) {
			t.Fatalf("%s: %d slots for %d programs", step, len(snap.Slots), len(progs))
		}
	}
	check("initial")

	for op := 0; op < 14; op++ {
		// Biased churn so the size drifts through empty and back.
		if len(live) > 0 && (rng.Intn(3) == 0 || len(live) > 14) {
			remove()
		} else {
			add()
		}
		if op%3 == 2 {
			check(fmt.Sprintf("op %d", op))
		}
	}
	// Drain to empty and regrow: exercises cache clearing and re-seeding.
	for len(live) > 0 {
		remove()
	}
	check("drained")
	for i := 0; i < 5; i++ {
		add()
	}
	check("regrown")
}

// TestIncrementalReusesSubtrees asserts the O(log N) claim structurally: a
// single Add to a built registry of n queries recomputes only the pairs on
// the new leaf's root path, reusing every sibling subtree.
func TestIncrementalReusesSubtrees(t *testing.T) {
	pool := queries.MustGen("flight", "Q1", 40, 3)
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const n = 32
	for i := 0; i < n; i++ {
		if _, err := r.Add(pool[i]); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := r.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Build.PairsMerged != n-1 {
		t.Fatalf("cold build merged %d pairs, want %d", snap.Build.PairsMerged, n-1)
	}

	if _, err := r.Add(pool[n]); err != nil {
		t.Fatal(err)
	}
	snap, err = r.Flush()
	if err != nil {
		t.Fatal(err)
	}
	// 33 leaves: the new leaf is carried up to the root merge — one new
	// pair; the 32-leaf subtree is fully reused.
	if snap.Build.PairsMerged > 6 {
		t.Fatalf("incremental add recomputed %d pairs, want O(log n)", snap.Build.PairsMerged)
	}
	if snap.Build.NodesReused == 0 {
		t.Fatal("incremental add reused no subtrees")
	}

	// Removing an interior query swaps the last leaf in: two root paths.
	if err := r.Remove(snap.Slots[3]); err != nil {
		t.Fatal(err)
	}
	snap, err = r.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Build.PairsMerged > 2*6 {
		t.Fatalf("incremental remove recomputed %d pairs, want O(log n)", snap.Build.PairsMerged)
	}
	if got := r.Stats(); got.CachedNodes == 0 || got.Builds != 3 {
		t.Fatalf("registry stats: %+v", got)
	}
}

// TestDeltaSnapshots checks the liveness bridge between a change and the
// next rebuild: adds run verbatim as Pending, removes of built queries are
// suppressed via Removed, and removes of still-pending queries simply drop
// them.
func TestDeltaSnapshots(t *testing.T) {
	pool := queries.MustGen("flight", "Q1", 10, 5)
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	a, _ := r.Add(pool[0])
	b, _ := r.Add(pool[1])
	if _, err := r.Flush(); err != nil {
		t.Fatal(err)
	}

	c, _ := r.Add(pool[2])
	snap := r.Snapshot()
	if len(snap.Pending) != 1 || snap.Pending[0].ID != c {
		t.Fatalf("pending delta wrong: %+v", snap.Pending)
	}
	ids := snap.LiveIDs()
	if len(ids) != 3 {
		t.Fatalf("LiveIDs = %v", ids)
	}

	// Remove a built query: suppressed, still in Slots.
	if err := r.Remove(a); err != nil {
		t.Fatal(err)
	}
	snap = r.Snapshot()
	if !snap.Removed[a] || len(snap.Slots) != 2 {
		t.Fatalf("removed delta wrong: %+v", snap)
	}
	if got := snap.LiveIDs(); len(got) != 2 {
		t.Fatalf("LiveIDs after remove = %v", got)
	}

	// Remove the pending query before it was ever consolidated.
	if err := r.Remove(c); err != nil {
		t.Fatal(err)
	}
	if snap = r.Snapshot(); len(snap.Pending) != 0 {
		t.Fatalf("pending not dropped: %+v", snap.Pending)
	}

	final, err := r.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if !final.Clean() || len(final.Slots) != 1 || final.Slots[0] != b {
		t.Fatalf("final snapshot: %+v", final)
	}
	if r.Size() != 1 {
		t.Fatalf("size = %d", r.Size())
	}
}

// TestValidation covers Add/Remove rejection paths.
func TestValidation(t *testing.T) {
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Add(lang.MustParse("func two(r) { notify 1 true; notify 2 false; }")); err == nil {
		t.Error("query notifying two ids must be rejected")
	}
	if _, err := r.Add(lang.MustParse("func ok(r) { notify 1 (price(r) < 10); }")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(lang.MustParse("func mismatch(x) { notify 1 (x < 10); }")); err == nil {
		t.Error("parameter mismatch must be rejected")
	}
	if err := r.Remove(QueryID(999)); err == nil {
		t.Error("unknown id must be rejected")
	}
}

// TestDebounceBatchesBursts asserts the worker coalesces a storm of
// subscriptions: many adds inside the debounce window end in a clean
// snapshot after far fewer rebuilds than changes.
func TestDebounceBatchesBursts(t *testing.T) {
	pool := queries.MustGen("flight", "Q1", 40, 9)
	r, err := New(Options{Debounce: 30 * time.Millisecond, MaxLag: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const burst = 20
	for i := 0; i < burst; i++ {
		if _, err := r.Add(pool[i]); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if s := r.Snapshot(); s.Clean() && len(s.Slots) == burst {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never produced a clean snapshot: %+v", r.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := r.Stats(); st.Builds >= burst/2 {
		t.Fatalf("burst of %d adds triggered %d rebuilds; debouncing failed", burst, st.Builds)
	}
}

// TestConcurrentChurnRace drives Add/Remove/Snapshot/Flush from many
// goroutines; meaningful mainly under -race, and finishes with the
// equivalence check.
func TestConcurrentChurnRace(t *testing.T) {
	pool := queries.MustGen("flight", "Q1", 64, 13)
	r, err := New(Options{Debounce: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var mu sync.Mutex
	var live []QueryID
	var churn sync.WaitGroup
	for w := 0; w < 4; w++ {
		churn.Add(1)
		go func(w int) {
			defer churn.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 12; i++ {
				if rng.Intn(3) == 0 {
					mu.Lock()
					if len(live) > 0 {
						id := live[rng.Intn(len(live))]
						live = removeID(live, id)
						mu.Unlock()
						_ = r.Remove(id)
						continue
					}
					mu.Unlock()
				}
				id, err := r.Add(pool[(w*12+i)%len(pool)])
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				live = append(live, id)
				mu.Unlock()
			}
		}(w)
	}
	// A reader hammers snapshots while churn is in flight.
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		var lastGen uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if s.Gen < lastGen {
				t.Error("generation went backwards")
				return
			}
			lastGen = s.Gen
			s.LiveIDs()
		}
	}()
	churn.Wait()
	close(stop)
	reader.Wait()

	snap, err := r.Flush()
	if err != nil {
		t.Fatal(err)
	}
	progs := r.Programs()
	if len(progs) > 0 {
		if lang.Format(snap.Merged) != lang.Format(scratch(t, progs)) {
			t.Fatal("post-churn registry output differs from from-scratch All")
		}
	}
}

func removeID(ids []QueryID, id QueryID) []QueryID {
	out := ids[:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}
