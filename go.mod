module consolidation

go 1.22
