// Package consolidation is a Go implementation of program consolidation
// from "Consolidation of Queries with User-Defined Functions" (PLDI 2014):
// a purely static, SMT-driven optimisation that merges many user-defined
// functions (UDFs) operating on the same input into one program whose
// execution cost never exceeds — and usually undercuts by a large factor —
// the cost of running the UDFs sequentially.
//
// The package is a facade over the building blocks in internal/:
//
//   - a small imperative UDF language with a cost-annotated interpreter
//     (internal/lang),
//   - a from-scratch SMT solver for linear integer arithmetic plus
//     uninterpreted functions (internal/smt),
//   - symbolic contexts, loop-invariant inference and the consolidation
//     calculus itself (internal/sym, internal/invariant,
//     internal/consolidate),
//   - a miniature dataflow engine with whereMany / whereConsolidated
//     operators, datasets and query workloads reproducing the paper's
//     evaluation (internal/engine, internal/data, internal/queries,
//     internal/bench).
//
// Quick start:
//
//	p1 := consolidation.MustParse(`func f1(x) { notify 1 (x > 10); }`)
//	p2 := consolidation.MustParse(`func f2(x) { notify 2 (x <= 10); }`)
//	merged, stats, err := consolidation.Consolidate(p1, p2)
//
// See examples/ for runnable end-to-end programs.
package consolidation

import (
	"consolidation/internal/consolidate"
	"consolidation/internal/lang"
	"consolidation/internal/linq"
)

// Program is a UDF in the formal language of the paper (Figure 1).
type Program = lang.Program

// Library supplies the deterministic, side-effect-free external functions
// UDFs may call.
type Library = lang.Library

// MapLibrary is a Library built from explicit Go functions.
type MapLibrary = lang.MapLibrary

// Notifications maps notification identifiers to the booleans broadcast by
// a run.
type Notifications = lang.Notifications

// Stats reports which calculus rules fired during a consolidation.
type Stats = consolidate.Stats

// MultiStats aggregates a divide-and-conquer consolidation.
type MultiStats = consolidate.MultiStats

// Options tunes the consolidation algorithm; the zero value uses the
// paper's defaults.
type Options = consolidate.Options

// Parse parses one UDF from source text. The concrete syntax is
//
//	func name(r) {
//	  x := price(r);
//	  if (x < 100) { notify 1 true; } else { notify 1 false; }
//	}
//
// with >, >=, != and boolean-valued notify as sugar over the paper's core
// language.
func Parse(src string) (*Program, error) { return lang.Parse(src) }

// MustParse is Parse that panics on error.
func MustParse(src string) *Program { return lang.MustParse(src) }

// ParseAll parses a sequence of UDFs from one source text.
func ParseAll(src string) ([]*Program, error) { return lang.ParseAll(src) }

// Format renders a program as re-parseable indented source text.
func Format(p *Program) string { return lang.Format(p) }

// Consolidate merges two UDFs into one (Π1 ⊗ Π2). The result broadcasts
// exactly the notifications of both programs and never costs more than
// running them in sequence (Definition 1 of the paper).
func Consolidate(p1, p2 *Program) (*Program, Stats, error) {
	co := consolidate.New(consolidate.DefaultOptions())
	merged, err := co.Pair(p1, p2)
	return merged, co.Stats(), err
}

// ConsolidateWith is Consolidate with explicit options (cost model,
// library pricing, embedding budget).
func ConsolidateWith(opts Options, p1, p2 *Program) (*Program, Stats, error) {
	co := consolidate.New(opts)
	merged, err := co.Pair(p1, p2)
	return merged, co.Stats(), err
}

// ConsolidateAll merges n UDFs with the parallel divide-and-conquer scheme
// of Section 6.1. When renumber is true, each program's notification ids
// are rewritten to its index (required when programs reuse ids).
func ConsolidateAll(progs []*Program, opts Options, renumber bool) (*Program, *MultiStats, error) {
	return consolidate.All(progs, opts, renumber, true)
}

// Run executes a program against a library, returning its notification
// environment and abstract execution cost.
func Run(p *Program, lib Library, args []int64) (Notifications, int64, error) {
	res, err := lang.NewInterp(lib).Run(p, args)
	if err != nil {
		return nil, 0, err
	}
	return res.Notes, res.Cost, nil
}

// Verify checks the soundness and cost bound of a consolidation on
// concrete inputs: the merged program must broadcast exactly the union of
// the originals' notifications at no greater total cost. It returns an
// error describing the first violation.
func Verify(origs []*Program, merged *Program, lib Library, inputs [][]int64, renumbered bool) error {
	return consolidate.Verify(origs, merged, lib, nil, inputs, renumbered)
}

// CompileLINQ compiles a C#-style filter lambda — the paper's LINQ
// where-clause surface syntax — into a Program. String literals are
// interned through st (see NewStrings); pass nil when the filter uses no
// strings.
//
//	st := consolidation.NewStrings()
//	p, err := consolidation.CompileLINQ("q1",
//	    `fi => fi.airlineName == "united" && fi.price < 200`, 1, st)
func CompileLINQ(name, src string, notifyID int, st *Strings) (*Program, error) {
	return linq.Compile(name, src, notifyID, st)
}

// Strings interns string literals shared between compiled LINQ filters and
// the record library answering string-valued fields.
type Strings = linq.Strings

// NewStrings returns an empty string-interning table.
func NewStrings() *Strings { return linq.NewStrings() }

// AggProgram is a windowed aggregation UDF: declared accumulators, a
// per-record fold over a bounded window, and a notification emit that runs
// when the window closes. The concrete syntax is
//
//	agg hot(r) window 4 by cityOf {
//	  acc n = 0;
//	  fold { t := tempObs(r); if (20 < t) { n := n + 1; } }
//	  emit { notify 0 (n >= 2); }
//	}
//
// where `window k` groups the stream into tumbling windows of k records
// and the optional `by f` partitions by the value of library function f
// first (per-key windows).
type AggProgram = lang.AggProgram

// WindowSpec describes how a stream is grouped into windows: a size in
// records and an optional key-partitioning library function.
type WindowSpec = lang.WindowSpec

// AggGroup is one window-aligned set of aggregations merged into a shared
// fold and emit, with the per-accumulator combine operators when the
// merged fold verified homomorphic.
type AggGroup = consolidate.AggGroup

// ParseAgg parses one windowed aggregation from source text.
func ParseAgg(src string) (*AggProgram, error) { return lang.ParseAgg(src) }

// ParseAggs parses a sequence of windowed aggregations from one source
// text.
func ParseAggs(src string) ([]*AggProgram, error) { return lang.ParseAggs(src) }

// MustParseAgg is ParseAgg that panics on error.
func MustParseAgg(src string) *AggProgram { return lang.MustParseAgg(src) }

// FormatAgg renders an aggregation as re-parseable source text.
func FormatAgg(a *AggProgram) string { return lang.FormatAgg(a) }

// MergeAggs consolidates a batch of windowed aggregations: aggregations
// with identical window specifications merge into one AggGroup each, whose
// shared fold traverses the window once for every member. Groups whose
// merged fold is homomorphic (sum/max/min accumulators, SMT-verified) may
// additionally be executed as per-batch partials combined at window close.
func MergeAggs(aggs []*AggProgram, opts Options) ([]*AggGroup, error) {
	return consolidate.MergeAggs(aggs, opts)
}
