// Command oracle runs randomized differential-testing campaigns against
// the whole consolidation stack: generated Figure 1 program batches are
// consolidated and held to Definition 1 and the §2 cost theorem, churn
// traces are replayed against the live registry and compared
// byte-for-byte with from-scratch consolidation, and random QF_UFLIA
// formulas cross-check the SMT solver against a brute-force model search.
//
// Failing seeds are shrunk to minimal reproducers and written under -out
// (one directory per failure, with the pretty-printed programs, the
// probe inputs, and a README describing the violated property); the
// process exits 1 if any check failed.
//
// Typical runs:
//
//	go run ./cmd/oracle -n 500 -seed 1        # the acceptance campaign
//	go run ./cmd/oracle -n 1 -seed 123456     # reproduce one seed
//	go run ./cmd/oracle -checks smt -n 10000  # hammer one subsystem
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"consolidation/internal/lang"
	"consolidation/internal/oracle"
)

func main() {
	var (
		n             = flag.Int("n", 500, "number of seeds to run")
		seed          = flag.Int64("seed", 1, "base seed; iteration i uses seed+i")
		events        = flag.Int("events", 5, "churn events per registry check")
		registryEvery = flag.Int("registry-every", 4, "run the registry churn check on seeds divisible by k (0 disables)")
		shardEvery    = flag.Int("shard-every", 4, "run the sharded-registry check on seeds where (seed+2) is divisible by k (0 disables)")
		checks        = flag.String("checks", "consolidate,exec,prefilter,batch,aggregate,registry,shard,smt,context,intern", "comma-separated checks to run")
		shrinkBudget  = flag.Int("shrink-budget", oracle.DefaultShrinkBudget, "re-check budget per shrink")
		out           = flag.String("out", "oracle-failures", "directory for minimized reproducers")
		jobs          = flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent iterations")
		verbose       = flag.Bool("v", false, "log every iteration")
	)
	flag.Parse()

	enabled := map[string]bool{}
	for _, c := range strings.Split(*checks, ",") {
		enabled[strings.TrimSpace(c)] = true
	}

	start := time.Now()
	var (
		mu       sync.Mutex
		failures []*oracle.Failure
		ran      struct {
			consolidate, exec, prefilter, batch, aggregate int
			registry, shard, smt, context, intern          int
		}
	)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < max(1, *jobs); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				s := *seed + int64(i)
				var found []*oracle.Failure
				var c, e, pf, bp, ag, r, sh, m, x, it int
				if enabled["consolidate"] {
					b := oracle.Generate(s, shapeFor(s))
					c++
					if f := oracle.CheckConsolidation(b); f != nil {
						found = append(found, f)
					}
				}
				if enabled["exec"] {
					b := oracle.Generate(s, shapeFor(s))
					e++
					if f := oracle.CheckExecutor(b); f != nil {
						found = append(found, f)
					}
				}
				if enabled["prefilter"] {
					b := oracle.Generate(s, shapeFor(s))
					pf++
					if f := oracle.CheckPrefilter(b); f != nil {
						found = append(found, f)
					}
				}
				if enabled["batch"] {
					b := oracle.Generate(s, shapeFor(s))
					bp++
					if f := oracle.CheckBatchParity(b); f != nil {
						found = append(found, f)
					}
				}
				if enabled["aggregate"] {
					ag++
					if f := oracle.CheckAggregate(oracle.GenAggCase(s)); f != nil {
						found = append(found, f)
					}
				}
				if enabled["registry"] && *registryEvery > 0 && s%int64(*registryEvery) == 0 {
					o := shapeFor(s)
					o.Programs = 2
					r++
					if f := oracle.CheckRegistry(oracle.Generate(s, o), *events); f != nil {
						found = append(found, f)
					}
				}
				if enabled["shard"] && *shardEvery > 0 && (s+2)%int64(*shardEvery) == 0 {
					o := shapeFor(s)
					o.Programs = 2
					sh++
					if f := oracle.CheckSharded(oracle.Generate(s, o), *events); f != nil {
						found = append(found, f)
					}
				}
				if enabled["smt"] {
					m++
					if f := oracle.CheckSMT(s); f != nil {
						found = append(found, f)
					}
				}
				if enabled["context"] {
					x++
					if f := oracle.CheckSMTContext(s); f != nil {
						found = append(found, f)
					}
				}
				if enabled["intern"] {
					it++
					if f := oracle.CheckInterner(s); f != nil {
						found = append(found, f)
					}
				}
				mu.Lock()
				ran.consolidate += c
				ran.exec += e
				ran.prefilter += pf
				ran.batch += bp
				ran.aggregate += ag
				ran.registry += r
				ran.shard += sh
				ran.smt += m
				ran.context += x
				ran.intern += it
				failures = append(failures, found...)
				if *verbose {
					fmt.Printf("seed %d: %d failure(s)\n", s, len(found))
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	sort.Slice(failures, func(i, j int) bool { return failures[i].Seed < failures[j].Seed })
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "FAIL %v\n", f)
		g := oracle.Shrink(f, *shrinkBudget)
		if dir, err := writeReproducer(*out, g); err != nil {
			fmt.Fprintf(os.Stderr, "  (could not write reproducer: %v)\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "  minimized reproducer: %s\n", dir)
		}
	}
	fmt.Printf("oracle: %d seeds from %d in %s — %d consolidation, %d executor, %d prefilter, %d batch-parity, %d aggregate, %d registry, %d shard, %d smt, %d context, %d interner checks, %d failure(s)\n",
		*n, *seed, time.Since(start).Round(time.Millisecond), ran.consolidate, ran.exec, ran.prefilter, ran.batch, ran.aggregate, ran.registry, ran.shard, ran.smt, ran.context, ran.intern, len(failures))
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// shapeFor rotates batch shapes across seeds so a campaign covers small
// and large batches, shallow and deep nesting — not 500 samples of one
// silhouette. The shape is a function of the seed alone so that the
// README's "-n 1 -seed S" replay line reruns exactly the batch that
// failed in a campaign.
func shapeFor(seed int64) oracle.GenOptions {
	o := oracle.DefaultGenOptions()
	o.Mix = oracle.Mix(seed % 3)
	o.Programs = 2 + int((seed/3)%3)
	o.TopStmts = 2 + int((seed/9)%2)
	if (seed/18)%5 == 4 {
		o.Depth = 3
	}
	return o
}

// writeReproducer persists one shrunk failure under dir, returning the
// created path.
func writeReproducer(root string, f *oracle.Failure) (string, error) {
	dir := filepath.Join(root, fmt.Sprintf("seed%d-%s", f.Seed, f.Check))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	readme := fmt.Sprintf("check: %s\nseed: %d\n\n%s\n\nReplay: go run ./cmd/oracle -n 1 -seed %d\n",
		f.Check, f.Seed, f.Msg, f.Seed)
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte(readme), 0o644); err != nil {
		return "", err
	}
	if f.Batch != nil {
		var sb strings.Builder
		for _, p := range f.Batch.Progs {
			sb.WriteString(lang.Format(p))
			sb.WriteString("\n")
		}
		if err := os.WriteFile(filepath.Join(dir, "programs.udf"), []byte(sb.String()), 0o644); err != nil {
			return "", err
		}
		var in strings.Builder
		for _, rec := range f.Batch.Inputs {
			fmt.Fprintln(&in, rec)
		}
		if f.Input != nil {
			fmt.Fprintf(&in, "# offending input: %v\n", f.Input)
		}
		if err := os.WriteFile(filepath.Join(dir, "inputs.txt"), []byte(in.String()), 0o644); err != nil {
			return "", err
		}
	}
	if f.Formula != "" {
		if err := os.WriteFile(filepath.Join(dir, "formula.txt"), []byte(f.Formula+"\n"), 0o644); err != nil {
			return "", err
		}
	}
	return dir, nil
}
