// Command aggbench measures the windowed-aggregation workload: families
// of user-defined aggregations sharing one window spec are executed
// per-aggregation (the unmerged reference) and through the consolidated
// shared traversal, and the report shows the abstract-cost reduction the
// merge recovers plus whether the homomorphic partial/combine split
// engaged.
//
// The two standing workloads are per-city rolling weather statistics
// (keyed hourly observation windows per station) and per-ticker OHLC-style
// stock windows (keyed tick windows per instrument); both also run
// count-partitioned ("every N records") variants.
//
// Usage:
//
//	aggbench [-n 6] [-scale 0.05] [-seed 1] [-workers 0] [-json]
//
// -json emits one bench.AggSummary object per workload (JSON lines), the
// form benchguard's -aggcurrent gate consumes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"consolidation/internal/bench"
)

var (
	flagN       = flag.Int("n", 6, "aggregations per workload")
	flagScale   = flag.Float64("scale", 0.05, "stream scale relative to the benchmark default")
	flagSeed    = flag.Int64("seed", 1, "workload seed")
	flagWorkers = flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	flagJSON    = flag.Bool("json", false, "emit one JSON summary object per workload instead of the report")
)

func main() {
	flag.Parse()
	workloads := []bench.AggConfig{
		// Per-city rolling weather stats: every station's last 12 hourly
		// observations, plus the count-partitioned "every 12 readings" view.
		{Domain: "weather", Window: 12, Keyed: true},
		{Domain: "weather", Window: 12, Keyed: false},
		// Per-ticker OHLC-style windows: every instrument's last 10 ticks.
		{Domain: "stock", Window: 10, Keyed: true},
		{Domain: "stock", Window: 10, Keyed: false},
	}
	enc := json.NewEncoder(os.Stdout)
	if !*flagJSON {
		fmt.Println("Windowed aggregation — merged shared traversal vs per-aggregation replay")
		fmt.Printf("(%d aggregations per workload, stream scale %.2f, seed %d)\n\n", *flagN, *flagScale, *flagSeed)
		fmt.Println(bench.AggHeader())
	}
	for _, w := range workloads {
		w.NumAggs = *flagN
		w.Scale = *flagScale
		w.Seed = *flagSeed
		w.Workers = *flagWorkers
		o, err := bench.RunAgg(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: %s: %v\n", w.Domain, err)
			os.Exit(1)
		}
		if *flagJSON {
			if err := enc.Encode(o.Summary()); err != nil {
				fmt.Fprintf(os.Stderr, "aggbench: %v\n", err)
				os.Exit(1)
			}
		} else {
			fmt.Println(o.AggRow())
		}
		if !o.Agree {
			fmt.Fprintf(os.Stderr, "aggbench: %s: merged outputs diverge from the per-aggregation replay\n", w.Domain)
			os.Exit(1)
		}
	}
}
