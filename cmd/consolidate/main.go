// Command consolidate merges UDFs written in the paper's formal language
// and reports cost statistics.
//
// Usage:
//
//	consolidate [-stats] [-verify] file.udf...
//	consolidate -demo
//
// Each input file holds one or more `func name(params) { … }` programs; all
// programs across all files are consolidated into one, which is printed to
// stdout. With -verify, library calls are given a deterministic synthetic
// interpretation and the consolidation is validated on sampled inputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"consolidation/internal/consolidate"
	"consolidation/internal/cost"
	"consolidation/internal/lang"
)

var (
	flagStats   = flag.Bool("stats", false, "print rule and solver statistics")
	flagVerify  = flag.Bool("verify", false, "validate soundness and cost on sampled inputs")
	flagDemo    = flag.Bool("demo", false, "run on the paper's Section 2 example instead of files")
	flagEmbed   = flag.Int("max-embed", 6000, "If3/If4 embedding budget in AST nodes")
	flagCPUProf = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	flagMemProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")
)

const demo = `
func f1(fi) {
  name := airlineName(fi);
  if (name == 1) { notify 1 true; } else { notify 1 (name == 2); }
}
func f2(fi) {
  if (price(fi) >= 200) { notify 2 false; }
  else { notify 2 (airlineName(fi) == 1); }
}
`

func main() {
	flag.Parse()
	if *flagCPUProf != "" {
		f, err := os.Create(*flagCPUProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *flagMemProf != "" {
		defer func() {
			f, err := os.Create(*flagMemProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "consolidate:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "consolidate:", err)
			}
		}()
	}
	var progs []*lang.Program
	if *flagDemo {
		ps, err := lang.ParseAll(demo)
		if err != nil {
			fatal(err)
		}
		progs = ps
	} else {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: consolidate [-stats] [-verify] file.udf...  (or -demo)")
			os.Exit(2)
		}
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			ps, err := lang.ParseAll(string(src))
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			progs = append(progs, ps...)
		}
	}
	if len(progs) == 0 {
		fatal(fmt.Errorf("no programs found"))
	}

	opts := consolidate.DefaultOptions()
	opts.MaxEmbedSize = *flagEmbed
	start := time.Now()
	merged, ms, err := consolidate.All(progs, opts, false, true)
	if err != nil {
		fatal(err)
	}
	fmt.Print(lang.Format(merged))

	if *flagStats {
		fmt.Fprintf(os.Stderr, "\nprograms: %d   pairs: %d   levels: %d   time: %s\n",
			ms.Programs, ms.Pairs, ms.Levels, time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(os.Stderr, "rules: If1=%d If2=%d If3=%d If4=%d If5=%d Loop2=%d Loop3=%d seq=%d simplifiedAssigns=%d\n",
			ms.Rules.If1, ms.Rules.If2, ms.Rules.If3, ms.Rules.If4, ms.Rules.If5,
			ms.Rules.Loop2, ms.Rules.Loop3, ms.Rules.LoopsSequential, ms.Rules.AssignsSimplified)
		fmt.Fprintf(os.Stderr, "SMT queries: %d   cache hit-rate: %.1f%%   output size: %d AST nodes\n",
			ms.SMTQueries, ms.CacheHitRate()*100, ms.OutputSize)
		fmt.Fprintf(os.Stderr, "SMT cache: %d entries, %d lookups, %d hits, %d stores, %d evictions, %d contended locks\n",
			ms.Cache.Entries, ms.Cache.Lookups, ms.Cache.Hits, ms.Cache.Stores, ms.Cache.Evictions, ms.Cache.Contended)
		seq := cost.Sequential(progs, nil, nil)
		one := cost.Program(merged, nil, nil)
		fmt.Fprintf(os.Stderr, "static cost: sequential %s, consolidated %s\n",
			boundString(seq), boundString(one))
	}

	if *flagVerify {
		lib := syntheticLibrary(progs)
		inputs := sampleInputs(len(progs[0].Params), 60)
		if err := consolidate.Verify(progs, merged, lib, nil, inputs, false); err != nil {
			fatal(fmt.Errorf("verification FAILED: %w", err))
		}
		fmt.Fprintln(os.Stderr, "verified: identical notifications, cost never exceeds sequential execution")
	}
}

// syntheticLibrary gives every called function a deterministic pseudo-random
// interpretation, enough to exercise both branches of typical filters.
func syntheticLibrary(progs []*lang.Program) *lang.MapLibrary {
	lib := &lang.MapLibrary{}
	seen := map[string]bool{}
	for _, p := range progs {
		for fn := range lang.CalledFuncs(p.Body) {
			if seen[fn] {
				continue
			}
			seen[fn] = true
			name := fn
			lib.Define(fn, 50, func(args []int64) (int64, error) {
				h := uint64(1469598103934665603)
				for i := 0; i < len(name); i++ {
					h = (h ^ uint64(name[i])) * 1099511628211
				}
				for _, a := range args {
					h = (h ^ uint64(a)) * 1099511628211
				}
				return int64(h % 401), nil
			})
		}
	}
	return lib
}

func sampleInputs(arity, n int) [][]int64 {
	var out [][]int64
	for i := 0; i < n; i++ {
		in := make([]int64, arity)
		for j := range in {
			in[j] = int64((i*31+j*17)%40 - 5)
		}
		out = append(out, in)
	}
	return out
}

func boundString(b cost.Bound) string {
	if !b.MaxKnown {
		return fmt.Sprintf("[%d, ∞)", b.Min)
	}
	if b.Exact() {
		return fmt.Sprintf("%d", b.Min)
	}
	return fmt.Sprintf("[%d, %d]", b.Min, b.Max)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "consolidate:", err)
	os.Exit(1)
}
