// The -sharded mode: the similarity-sharded registry's churn benchmark.
// It seeds a ShardedRegistry with N queries, replays a timed Add/Remove
// trace against it (admission latency — the time a subscription blocks on),
// times the lazy per-event Rebuild that re-consolidates only the dirtied
// clusters (stall), prices the registry-less alternative at a tractable
// baseline N (from-scratch consolidate.All per change), and closes with a
// small-N whole-pass throughput duel of WhereSharded against a single
// global registry's WhereRegistry, cross-checking the notification sets.
//
// With -json the run emits a bench.ChurnSummary object — the input to
// benchguard's -churn admission-latency and throughput gates.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"consolidation/internal/bench"
	"consolidation/internal/consolidate"
	"consolidation/internal/engine"
	"consolidation/internal/lang"
	"consolidation/internal/prefilter"
	"consolidation/internal/queries"
	"consolidation/internal/registry"
	"consolidation/internal/shard"
	"consolidation/internal/smt"
)

// runSharded drives the churn benchmark and prints either the human table
// or the bench.ChurnSummary JSON object.
func runSharded() {
	n, events := *flagN, *flagEvents
	ds, err := bench.Dataset(*flagDomain, *flagScale, *flagSeed)
	if err != nil {
		fatal(err)
	}
	poolN := n + events
	if *flagBaselineN > poolN {
		poolN = *flagBaselineN
	}
	if *flagDuelN > poolN {
		poolN = *flagDuelN
	}
	pool, err := queries.Gen(*flagDomain, *flagFamily, poolN, 100+*flagSeed)
	if err != nil {
		fatal(err)
	}
	if *flagSel < 1 {
		if *flagSel <= 0 {
			fatal(fmt.Errorf("-selectivity must be in (0, 1]"))
		}
		q, ok := ds.(interface{ FollowerQuantile(p float64) int64 })
		if !ok {
			fatal(fmt.Errorf("domain %q has no cheap gating field; -selectivity supports twitter", *flagDomain))
		}
		pool = queries.Selective(pool, "followerCount", q.FollowerQuantile, *flagSel, 100+*flagSeed)
	}

	copts := consolidate.DefaultOptions()
	copts.FuncCoster = ds.(lang.FuncCoster)
	pf := &prefilter.Options{Coster: ds.(lang.FuncCoster)}
	if lite, ok := ds.(engine.LiteRecordLibrary); ok {
		pf.MaxCallCost = lite.LiteCostBound()
	}
	ropts := registry.Options{Consolidate: copts, Workers: *flagWorkers, Prefilter: pf}
	newSharded := func() *shard.ShardedRegistry {
		sh, err := shard.New(shard.Options{Registry: ropts, MaxClusterSize: *flagCluster, MinSimilarity: *flagMinSim})
		if err != nil {
			fatal(err)
		}
		return sh
	}

	if !*flagJSON {
		fmt.Printf("sharded registry over %s/%s — %d queries, %d churn events, seed %d\n\n",
			*flagDomain, *flagFamily, n, events, *flagSeed)
	}

	// Churn phase: seed N, one cold Flush, then a timed Add/Remove trace
	// with a lazy Rebuild (dirty clusters only) after every event.
	sh := newSharded()
	var live []shard.QueryID
	next := 0
	add := func() time.Duration {
		t0 := time.Now()
		id, err := sh.Add(pool[next])
		d := time.Since(t0)
		if err != nil {
			fatal(err)
		}
		next++
		live = append(live, id)
		return d
	}
	for i := 0; i < n; i++ {
		add()
	}
	t0 := time.Now()
	if _, err := sh.Flush(); err != nil {
		fatal(err)
	}
	cold := time.Since(t0)

	rng := rand.New(rand.NewSource(*flagSeed))
	admit := make([]time.Duration, 0, events)
	stall := make([]time.Duration, 0, events)
	for ev := 0; ev < events; ev++ {
		if len(live) <= n/2 || rng.Intn(2) != 0 {
			admit = append(admit, add())
		} else {
			k := rng.Intn(len(live))
			t0 := time.Now()
			err := sh.Remove(live[k])
			admit = append(admit, time.Since(t0))
			if err != nil {
				fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		}
		t0 := time.Now()
		if _, err := sh.Rebuild(); err != nil {
			fatal(err)
		}
		stall = append(stall, time.Since(t0))
	}
	clean := sh.Snapshot().Clean()
	st := sh.Stats()
	clusters := sh.NumClusters()
	var mergedMax, mergedSum, mergedN int
	for _, cs := range sh.ClusterStats() {
		if cs.MergedSize > mergedMax {
			mergedMax = cs.MergedSize
		}
		mergedSum += cs.MergedSize
		mergedN++
	}
	// Release the churn-phase registry before timing anything else: at
	// N=10k its merge trees, caches and snapshots are most of the heap,
	// and keeping them reachable makes the GC tax the baseline and the
	// duel instead of the structures' owner.
	sh.Close()
	runtime.GC()

	// Baseline: the per-change price of a registry-less service — one
	// from-scratch consolidate.All with a fresh cache over BaselineN live
	// queries. From-scratch cost only grows with N, so measuring it at
	// BaselineN << N understates the gap the AdmitGain gate asks about.
	var baseSum time.Duration
	for rep := 0; rep < *flagReps; rep++ {
		sopts := consolidate.DefaultOptions()
		sopts.FuncCoster = ds.(lang.FuncCoster)
		sopts.Cache = smt.NewCache(0)
		t0 := time.Now()
		if _, _, err := consolidate.All(pool[:*flagBaselineN], sopts, true, true); err != nil {
			fatal(err)
		}
		baseSum += time.Since(t0)
	}
	baseline := baseSum / time.Duration(*flagReps)

	// Throughput duel at DuelN: the same queries in a fresh sharded
	// registry and in one global registry, whole-pass wall clock, best of
	// -reps, notification sets cross-checked under the id correspondence.
	duel := newSharded()
	defer duel.Close()
	greg, err := registry.New(ropts)
	if err != nil {
		fatal(err)
	}
	defer greg.Close()
	toShard := make(map[registry.QueryID]shard.QueryID, *flagDuelN)
	for _, p := range pool[:*flagDuelN] {
		sid, err := duel.Add(p)
		if err != nil {
			fatal(err)
		}
		gid, err := greg.Add(p)
		if err != nil {
			fatal(err)
		}
		toShard[gid] = sid
	}
	if _, err := duel.Flush(); err != nil {
		fatal(err)
	}
	if _, err := greg.Flush(); err != nil {
		fatal(err)
	}
	var shardRPS, globalRPS float64
	var sres *engine.ShardedResult
	var gres *engine.RegistryResult
	for rep := 0; rep < *flagReps; rep++ {
		sr, err := engine.WhereSharded(ds, duel, engine.Options{})
		if err != nil {
			fatal(err)
		}
		gr, err := engine.WhereRegistry(ds, greg, engine.Options{})
		if err != nil {
			fatal(err)
		}
		if rps := recordsPerSec(sr.Records, sr.TotalTime); rps > shardRPS {
			shardRPS = rps
		}
		if rps := recordsPerSec(gr.Records, gr.TotalTime); rps > globalRPS {
			globalRPS = rps
		}
		sres, gres = sr, gr
	}
	agree := clean && sameVerdicts(gres, sres, toShard)

	s := bench.ChurnSummary{
		Domain:   *flagDomain,
		Family:   *flagFamily,
		N:        n,
		Events:   events,
		Clusters: clusters,
		Splits:   int(st.Splits),
		CPUs:     runtime.GOMAXPROCS(0),

		AdmitP50Micros: micros(percentile(admit, 0.50)),
		AdmitP99Micros: micros(percentile(admit, 0.99)),
		AdmitMaxMicros: micros(percentile(admit, 1)),

		StallP50MS:  millis(percentile(stall, 0.50)),
		StallP99MS:  millis(percentile(stall, 0.99)),
		StallMeanMS: millis(mean(stall)),

		ColdBuildMS:    millis(cold),
		MergedSizeMax:  mergedMax,
		MergedSizeMean: float64(mergedSum) / float64(max(mergedN, 1)),

		BaselineN:         *flagBaselineN,
		BaselineRebuildMS: millis(baseline),

		ThroughputN:          *flagDuelN,
		ShardedRecordsPerSec: shardRPS,
		GlobalRecordsPerSec:  globalRPS,

		Agree: agree,
	}
	if s.AdmitP99Micros > 0 {
		s.AdmitGain = s.BaselineRebuildMS * 1000 / s.AdmitP99Micros
	}

	if *flagJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fatal(err)
		}
		if !agree {
			fatal(fmt.Errorf("sharded and global notification sets disagree"))
		}
		return
	}

	fmt.Printf("cold build: %d clusters in %s (merged size max %d, mean %.0f; %d splits so far)\n\n",
		s.Clusters, cold.Round(time.Millisecond), s.MergedSizeMax, s.MergedSizeMean, s.Splits)
	fmt.Printf("admission latency (%d events): p50 %.0fµs  p99 %.0fµs  max %.0fµs\n",
		events, s.AdmitP50Micros, s.AdmitP99Micros, s.AdmitMaxMicros)
	fmt.Printf("rebuild stall (dirty clusters only): p50 %.2fms  p99 %.2fms  mean %.2fms\n",
		s.StallP50MS, s.StallP99MS, s.StallMeanMS)
	fmt.Printf("baseline: from-scratch consolidation of N=%d is %.1fms per change -> admission gain >= %.0fx\n",
		s.BaselineN, s.BaselineRebuildMS, s.AdmitGain)
	fmt.Printf("throughput duel at N=%d: sharded %.0f rec/s vs global %.0f rec/s (%.2fx), verdicts agree: %v\n",
		s.ThroughputN, shardRPS, globalRPS, shardRPS/globalRPS, agree)
	if !agree {
		fatal(fmt.Errorf("sharded and global notification sets disagree"))
	}
}

// sameVerdicts diffs the duel's notification sets record-for-record under
// the global-to-shard id correspondence.
func sameVerdicts(g *engine.RegistryResult, s *engine.ShardedResult, toShard map[registry.QueryID]shard.QueryID) bool {
	if g == nil || s == nil || len(g.Verdicts) != len(s.Verdicts) {
		return false
	}
	for i := range g.Verdicts {
		if len(g.Verdicts[i]) != len(s.Verdicts[i]) {
			return false
		}
		for gid, v := range g.Verdicts[i] {
			if sv, ok := s.Verdicts[i][toShard[gid]]; !ok || sv != v {
				return false
			}
		}
	}
	return true
}

// percentile returns the q-quantile of ds by the nearest-rank method
// (q=1 is the maximum). ds is sorted in place.
func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	k := int(q*float64(len(ds))+0.5) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(ds) {
		k = len(ds) - 1
	}
	return ds[k]
}

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

func recordsPerSec(records int, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(records) / wall.Seconds()
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
