// Command live exercises the live query registry: it seeds a registry with
// News-mix queries, replays a seeded churn trace of subscriptions and
// unsubscriptions, and reports for every change the incremental
// re-consolidation latency next to a full consolidate.All from scratch over
// the same surviving set — the cost a registry-less service would pay. Each
// change also cross-checks that the incremental result is byte-identical to
// the from-scratch program.
//
// The run ends with a short hot-swap demo: records stream through the
// engine's WhereRegistry operator while a burst of churn lands, showing
// generation swaps, verbatim pending runs and suppressed notifications.
//
// Usage:
//
//	live [-n 50] [-events 20] [-scale 0.02] [-seed 1] [-workers 0]
//	live -sharded [-n 10000] [-events 200] [-domain twitter] [-selectivity 0.05] [-json]
//
// Expected shape: the cold build costs about as much as from-scratch, and
// every subsequent change re-merges only the O(log N) nodes on the changed
// root paths, so per-change time sits well below from-scratch — the gap
// widens with N.
//
// With -sharded the run instead benchmarks the similarity-sharded registry
// at large N: a timed Add/Remove churn trace (admission latency), the lazy
// per-event Rebuild over dirtied clusters (stall), a from-scratch baseline
// at -baseline-n, and a WhereSharded-vs-WhereRegistry throughput duel at
// -throughput-n. -json (implies -sharded) emits a bench.ChurnSummary for
// benchguard's -churn gate.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"consolidation/internal/bench"
	"consolidation/internal/consolidate"
	"consolidation/internal/engine"
	"consolidation/internal/lang"
	"consolidation/internal/queries"
	"consolidation/internal/registry"
	"consolidation/internal/smt"
)

var (
	flagN       = flag.Int("n", 50, "initial number of live queries")
	flagEvents  = flag.Int("events", 20, "churn events (add/remove) to replay")
	flagScale   = flag.Float64("scale", 0.02, "dataset scale relative to the paper's size")
	flagSeed    = flag.Int64("seed", 1, "trace seed")
	flagWorkers = flag.Int("workers", 0, "pair-merge workers (0 = GOMAXPROCS)")
	flagDomain  = flag.String("domain", "news", "dataset domain")
	flagFamily  = flag.String("family", "Mix", "query family")

	flagSharded   = flag.Bool("sharded", false, "benchmark the similarity-sharded registry instead of the global one")
	flagJSON      = flag.Bool("json", false, "emit a bench.ChurnSummary object (implies -sharded)")
	flagSel       = flag.Float64("selectivity", 1, "gate queries on a cheap record field so ~this fraction of records can notify (1 = ungated; -sharded only)")
	flagCluster   = flag.Int("cluster", 0, "max queries per cluster before a rebalance split (0 = shard default)")
	flagMinSim    = flag.Float64("minsim", 0, "similarity floor for joining a cluster (0 = shard default; negative = cap-driven clustering, new clusters only from capacity splits)")
	flagBaselineN = flag.Int("baseline-n", 100, "live-set size for the from-scratch rebuild baseline (-sharded only)")
	flagDuelN     = flag.Int("throughput-n", 50, "query count for the sharded-vs-global throughput duel (-sharded only)")
	flagReps      = flag.Int("reps", 3, "repetitions for the baseline and the throughput duel")
)

func main() {
	flag.Parse()
	if *flagJSON {
		*flagSharded = true
	}
	if *flagSharded {
		runSharded()
		return
	}
	ds, err := bench.Dataset(*flagDomain, *flagScale, *flagSeed)
	if err != nil {
		fatal(err)
	}
	pool, err := queries.Gen(*flagDomain, *flagFamily, *flagN+*flagEvents, 100+*flagSeed)
	if err != nil {
		fatal(err)
	}

	copts := consolidate.DefaultOptions()
	copts.FuncCoster = ds
	// Debounce 0: the registry publishes delta snapshots on every change but
	// rebuilds only when told to, so each Rebuild times exactly one change.
	reg, err := registry.New(registry.Options{Consolidate: copts, Workers: *flagWorkers})
	if err != nil {
		fatal(err)
	}
	defer reg.Close()

	var live []registry.QueryID
	next := 0
	add := func() registry.QueryID {
		id, err := reg.Add(pool[next])
		if err != nil {
			fatal(err)
		}
		next++
		live = append(live, id)
		return id
	}
	for i := 0; i < *flagN; i++ {
		add()
	}

	fmt.Printf("live registry over %s/%s — %d initial queries, %d churn events, seed %d\n\n",
		*flagDomain, *flagFamily, *flagN, *flagEvents, *flagSeed)
	cold, err := reg.Rebuild()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cold build: %d leaves, %d pairs, %s (SMT cache hit-rate %.0f%%)\n\n",
		cold.Build.Leaves, cold.Build.PairsMerged,
		cold.Build.Duration.Round(time.Millisecond), cold.Build.CacheHitRate*100)
	fmt.Printf("%-4s %-7s %4s  %12s %6s %7s  %12s %8s\n",
		"ev", "op", "N", "incremental", "pairs", "reused", "from-scratch", "speedup")

	rng := rand.New(rand.NewSource(*flagSeed))
	var incSum, scrSum time.Duration
	for ev := 0; ev < *flagEvents; ev++ {
		op := "add"
		if len(live) > *flagN/2 && rng.Intn(2) == 0 {
			op = "remove"
			k := rng.Intn(len(live))
			if err := reg.Remove(live[k]); err != nil {
				fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		} else {
			add()
		}

		snap, err := reg.Rebuild()
		if err != nil {
			fatal(err)
		}
		inc := snap.Build.Duration

		// The registry-less alternative: consolidate.All over the surviving
		// set, fresh cache (a batch caller has no state to warm it with).
		progs := reg.Programs()
		sopts := consolidate.DefaultOptions()
		sopts.FuncCoster = ds
		sopts.Cache = smt.NewCache(0)
		t0 := time.Now()
		scratchProg, _, err := consolidate.All(progs, sopts, true, true)
		if err != nil {
			fatal(err)
		}
		scr := time.Since(t0)

		if lang.Format(scratchProg) != lang.Format(snap.Merged) {
			fatal(fmt.Errorf("event %d: incremental program differs from from-scratch consolidation", ev))
		}
		incSum += inc
		scrSum += scr
		ratio := 0.0
		if inc > 0 {
			ratio = float64(scr) / float64(inc)
		}
		fmt.Printf("%-4d %-7s %4d  %12s %6d %7d  %12s %7.1fx\n",
			ev, op, len(progs), rnd(inc), snap.Build.PairsMerged, snap.Build.NodesReused,
			rnd(scr), ratio)
	}

	st := reg.Stats()
	fmt.Printf("\nper-change mean: incremental %s vs from-scratch %s (%.1fx)\n",
		rnd(incSum/time.Duration(*flagEvents)), rnd(scrSum/time.Duration(*flagEvents)),
		float64(scrSum)/float64(incSum))
	fmt.Printf("totals: %d builds, %d pairs re-merged, %d nodes reused, every result byte-identical to scratch\n",
		st.Builds, st.PairsMerged, st.NodesReused)

	hotSwapDemo(ds, reg, pool[:next], live)
}

// throttled paces a stream so the demo's churn overlaps it.
type throttled struct {
	engine.RecordLibrary
	delay time.Duration
}

func (t *throttled) SetRecord(i int) {
	time.Sleep(t.delay)
	t.RecordLibrary.SetRecord(i)
}
func (t *throttled) Clone() engine.RecordLibrary {
	return &throttled{t.RecordLibrary.Clone(), t.delay}
}

// hotSwapDemo streams the dataset through WhereRegistry while a burst of
// churn lands, demonstrating atomic generation swaps at record boundaries:
// each Add/Remove publishes a delta generation immediately (verbatim
// pending runs, suppressed notifications), without waiting for the next
// full re-consolidation.
func hotSwapDemo(ds engine.RecordLibrary, reg *registry.Registry, pool []*lang.Program, live []registry.QueryID) {
	fmt.Printf("\nhot-swap demo: streaming %d records while churn lands mid-stream\n", ds.NumRecords())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(*flagSeed + 7))
		for i := 0; i < 8; i++ {
			time.Sleep(3 * time.Millisecond)
			if i%2 == 0 && len(live) > 1 {
				k := rng.Intn(len(live))
				if reg.Remove(live[k]) == nil {
					live = append(live[:k], live[k+1:]...)
				}
			} else if id, err := reg.Add(pool[rng.Intn(len(pool))]); err == nil {
				live = append(live, id)
			}
		}
	}()
	res, err := engine.WhereRegistry(&throttled{ds, 300 * time.Microsecond}, reg, engine.Options{})
	wg.Wait()
	if err != nil {
		fatal(err)
	}
	var notes int
	for _, v := range res.Verdicts {
		notes += len(v)
	}
	fmt.Printf("  %d records, %d generation swaps, %d verbatim pending runs, %d suppressed notifications, %d notifications\n",
		res.Records, res.Swaps, res.PendingRuns, res.SuppressedNotifies, notes)
}

func rnd(d time.Duration) string { return d.Round(10 * time.Microsecond).String() }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "live:", err)
	os.Exit(1)
}
