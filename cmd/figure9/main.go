// Command figure9 regenerates Figure 9 of the paper: for every domain and
// query family, the speedup of whereConsolidated over whereMany, split into
// UDF-execution speedup (the paper's dark bars) and total-job speedup
// including consolidation time (the light bars).
//
// Usage:
//
//	figure9 [-domain weather|flight|news|twitter|stock|all]
//	        [-n 50] [-scale 0.05] [-seed 1] [-workers 0]
//
// Scale 1.0 reproduces the paper's full dataset sizes (slow under the tree-
// walking interpreter); the default 0.05 preserves the speedup shape, which
// is per-record and therefore size-independent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"consolidation/internal/bench"
	"consolidation/internal/queries"
)

var (
	flagDomain  = flag.String("domain", "all", "domain to run, or 'all'")
	flagN       = flag.Int("n", 50, "UDFs per family (paper: 50)")
	flagScale   = flag.Float64("scale", 0.05, "dataset scale relative to the paper's size")
	flagSeed    = flag.Int64("seed", 1, "workload seed")
	flagWorkers = flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	flagJSON    = flag.Bool("json", false, "emit one JSON summary object per family instead of the report")
)

func main() {
	flag.Parse()
	doms := queries.Domains()
	if *flagDomain != "all" {
		doms = []string{*flagDomain}
	}
	enc := json.NewEncoder(os.Stdout)
	if !*flagJSON {
		fmt.Println("Figure 9 — speedup of whereConsolidated over whereMany")
		fmt.Printf("(%d UDFs per family, dataset scale %.2f, seed %d)\n\n", *flagN, *flagScale, *flagSeed)
		fmt.Println(bench.Header())
	}

	var udfSpeedups, totalSpeedups []float64
	var consTimes []time.Duration
	var consFrac []float64
	var hitRates []float64
	for _, d := range doms {
		for _, f := range queries.Families(d) {
			o, err := bench.Run(bench.Config{
				Domain: d, Family: f, NumUDFs: *flagN,
				Scale: *flagScale, Seed: *flagSeed, Workers: *flagWorkers,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "figure9: %s/%s: %v\n", d, f, err)
				os.Exit(1)
			}
			if *flagJSON {
				if err := enc.Encode(o.Summary()); err != nil {
					fmt.Fprintf(os.Stderr, "figure9: %v\n", err)
					os.Exit(1)
				}
			} else {
				fmt.Println(o.Row())
			}
			if !o.Agree {
				fmt.Fprintf(os.Stderr, "figure9: %s/%s: operators disagree\n", d, f)
				os.Exit(1)
			}
			udfSpeedups = append(udfSpeedups, o.UDFSpeedup())
			totalSpeedups = append(totalSpeedups, o.TotalSpeedup())
			consTimes = append(consTimes, o.Consolidate)
			hitRates = append(hitRates, o.CacheHitRate*100)
			total := o.ConsTotal + o.Consolidate
			if total > 0 {
				consFrac = append(consFrac, float64(o.Consolidate)/float64(total)*100)
			}
		}
	}

	if *flagJSON {
		return
	}
	// The paper's in-text summary numbers (Section 6.3): UDF speedups
	// 2.6–24.2x (avg 8.4x); total 1.4–23.1x (avg 6.0x); consolidation
	// ≈0.3 s for 50 UDFs, ≈0.4 % of total query execution time.
	fmt.Println("\nsummary (paper reference in parentheses):")
	lo, hi, avg := stats(udfSpeedups)
	fmt.Printf("  UDF speedup    %5.1fx – %5.1fx, avg %5.1fx   (paper: 2.6x – 24.2x, avg 8.4x)\n", lo, hi, avg)
	lo, hi, avg = stats(totalSpeedups)
	fmt.Printf("  total speedup  %5.1fx – %5.1fx, avg %5.1fx   (paper: 1.4x – 23.1x, avg 6.0x)\n", lo, hi, avg)
	var consAvg time.Duration
	for _, c := range consTimes {
		consAvg += c
	}
	consAvg /= time.Duration(len(consTimes))
	_, _, fr := stats(consFrac)
	fmt.Printf("  consolidation  avg %s per %d UDFs, %.1f%% of total   (paper: ≈0.3 s, 0.4%%)\n",
		consAvg.Round(time.Millisecond), *flagN, fr)
	lo, hi, avg = stats(hitRates)
	fmt.Printf("  SMT cache      hit-rate %4.1f%% – %4.1f%%, avg %4.1f%% (shared across parallel pair workers)\n",
		lo, hi, avg)
}

func stats(xs []float64) (lo, hi, avg float64) {
	if len(xs) == 0 {
		return
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
		avg += x
	}
	avg /= float64(len(xs))
	return
}
