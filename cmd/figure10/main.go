// Command figure10 regenerates Figure 10 of the paper: scalability with
// the number of UDFs on mixes of query families in the News domain, as in
// the paper's Section 6.3. It sweeps the
// query count and prints five series — whereMany UDF and total time,
// whereConsolidated UDF and total time, and consolidation time — the same
// series the paper plots on a log-scale y axis.
//
// Usage:
//
//	figure10 [-counts 10,25,50,100,150,200,250,300] [-scale 0.02]
//	         [-seed 1] [-workers 0]
//
// The expected shape: whereMany grows roughly linearly with the number of
// UDFs while whereConsolidated stays roughly flat, and consolidation time
// stays a small fraction of job time throughout. The cache-hit column
// reports the shared SMT query cache's hit rate: it grows with N because
// the divide-and-conquer pairs re-issue queries earlier pairs and levels
// already solved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"consolidation/internal/bench"
)

var (
	flagCounts  = flag.String("counts", "10,25,50,100,150,200,250,300", "comma-separated UDF counts")
	flagScale   = flag.Float64("scale", 0.02, "dataset scale relative to the paper's size")
	flagSeed    = flag.Int64("seed", 1, "workload seed")
	flagWorkers = flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	flagJSON    = flag.Bool("json", false, "emit one JSON summary object per UDF count instead of the table")
	flagCPUProf = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	flagMemProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")
)

func main() {
	flag.Parse()
	if *flagCPUProf != "" {
		f, err := os.Create(*flagCPUProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure10: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "figure10: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *flagMemProf != "" {
		defer func() {
			f, err := os.Create(*flagMemProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figure10: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "figure10: %v\n", err)
			}
		}()
	}
	var counts []int
	for _, tok := range strings.Split(*flagCounts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "figure10: bad count %q\n", tok)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	enc := json.NewEncoder(os.Stdout)
	if !*flagJSON {
		fmt.Println("Figure 10 — scalability with the number of UDFs (News Mix workload)")
		fmt.Printf("(dataset scale %.2f, seed %d)\n\n", *flagScale, *flagSeed)
		fmt.Printf("%6s  %14s %14s  %14s %14s  %14s  %9s\n",
			"UDFs", "many-UDF", "many-total", "cons-UDF", "cons-total", "consolidation", "cache-hit")
	}

	for _, n := range counts {
		o, err := bench.Run(bench.Config{
			Domain: "news", Family: "Mix", NumUDFs: n,
			Scale: *flagScale, Seed: *flagSeed, Workers: *flagWorkers,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure10: n=%d: %v\n", n, err)
			os.Exit(1)
		}
		if !o.Agree {
			fmt.Fprintf(os.Stderr, "figure10: n=%d: operators disagree\n", n)
			os.Exit(1)
		}
		if *flagJSON {
			if err := enc.Encode(o.Summary()); err != nil {
				fmt.Fprintf(os.Stderr, "figure10: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		fmt.Printf("%6d  %14s %14s  %14s %14s  %14s  %8.1f%%\n",
			n,
			rnd(o.ManyUDFTime), rnd(o.ManyTotal),
			rnd(o.ConsUDFTime), rnd(o.ConsTotal),
			rnd(o.Consolidate), o.CacheHitRate*100)
	}
}

func rnd(d time.Duration) string { return d.Round(100 * time.Microsecond).String() }
