// Command benchguard compares a fresh benchmark run against the committed
// performance-trajectory baseline and fails on consolidated-cost
// regressions.
//
// The baseline (BENCH_pr4.json and successors) stores, under "summaries",
// the bench.Summary objects of the CI smoke configurations. A fresh run
// produces the same objects as JSON lines (cmd/figure9 -json, cmd/figure10
// -json); benchguard joins the two on (domain, family, num_udfs) and
// checks the machine-independent metrics:
//
//   - the operators must still agree (Definition 1 on the real datasets),
//   - cost_speedup must not drop below baseline × (1 − tol),
//   - merged_size must not inflate beyond baseline × (1 + tol),
//   - smt_queries must not grow beyond baseline × (1 + tol),
//   - consolidation_ms must not exceed baseline × (1 + walltol).
//
// When the baseline carries a "latency" object (cmd/latency -json) and a
// fresh run is supplied via -latcurrent, benchguard additionally gates
// per-record merged-program throughput: cons_records_per_sec must not
// fall below baseline × (1 − thrtol). Throughput is a property of the
// runner, so the default tolerance is loose (-thrtol 0.5): the gate
// trips on a lost superinstruction or a re-introduced per-record
// allocation, not on a noisy neighbour.
//
// When the baseline additionally carries a "latency_filtered" object (a
// cmd/latency -json -selectivity run) and a fresh run is supplied via
// -latfiltered, the same throughput gate is applied to the pre-filtered
// path, plus two structural checks that do not depend on the runner at
// all: the synthesized admission guard must be non-trivial and must
// actually reject records. Those trip when guard synthesis silently
// degrades to ⊤ — the filtered path then still agrees, but the
// predicate-pushdown win is gone.
//
// When the baseline carries a "latency_scaling" object (cmd/latency
// -scaling -json) and a fresh run is supplied via -latscaling, benchguard
// gates multi-core dispatch: the throughput at the highest measured worker
// count must be at least -minscale × the single-worker throughput. The
// gate is CPU-aware — the attainable parallelism is min(workers, cpus of
// the current run), and when that is below -minscale the gate logs and
// passes instead of demanding speedup the host physically cannot deliver
// (a 1-CPU container cannot scale, and must not fail a baseline recorded
// anywhere).
//
// When the baseline carries a "churn" object (cmd/live -sharded -json) and
// a fresh run is supplied via -churncurrent, benchguard gates the
// similarity-sharded registry. Both gates are ratios within the current
// run, so they are machine-independent: admit_gain (the from-scratch
// per-change rebuild over the sharded Add/Remove p99) must be at least
// -admitgain, and sharded whole-pass throughput must be at least
// -shardthr × the single global registry's on the same duel. The run must
// also report verdict agreement and an actually-sharded registry (more
// than one cluster).
//
// When the baseline carries an "agg" array (cmd/aggbench -json) and a
// fresh run is supplied via -aggcurrent, benchguard gates the windowed-
// aggregation workload: merged outputs must equal the per-aggregation
// replay, the abstract cost reduction of the shared traversal must reach
// -aggmin (2x) and stay within -tol of the baseline, and workloads whose
// baseline verified fully homomorphic must keep the partial/combine
// split. Cost reduction is a ratio of deterministic abstract costs, so
// the gate is machine-independent.
//
// Abstract cost, merged program size, and query counts are deterministic
// for a fixed (seed, scale, count) configuration, so tol exists only as a
// safety margin for intentional small shifts; genuine regressions blow
// well past it. Wall clock IS a property of the runner, so it gets its
// own, much looser tolerance (-walltol, default 1.0 = 2× baseline): the
// gate only trips on gross slowdowns — an accidental O(n²) key builder,
// a lost cache — not on scheduler noise. Set -walltol 0 to disable the
// wall-clock gate entirely (e.g. when re-baselining on new hardware).
//
// Usage:
//
//	go run ./cmd/benchguard -baseline BENCH_pr5.json -current f9.json,f10.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"consolidation/internal/bench"
)

var (
	flagBaseline    = flag.String("baseline", "BENCH_pr9.json", "committed baseline file (object with a summaries array)")
	flagCurrent     = flag.String("current", "", "comma-separated JSON-lines files from cmd/figure9 -json / cmd/figure10 -json")
	flagLatCurrent  = flag.String("latcurrent", "", "JSON file from cmd/latency -json for the throughput gate (requires a latency baseline)")
	flagLatFiltered = flag.String("latfiltered", "", "JSON file from cmd/latency -json -selectivity for the pre-filtered throughput gate (requires a latency_filtered baseline)")
	flagLatScaling  = flag.String("latscaling", "", "JSON file from cmd/latency -scaling -json for the multi-core dispatch gate (requires a latency_scaling baseline)")
	flagChurn       = flag.String("churncurrent", "", "JSON file from cmd/live -sharded -json for the sharded-registry churn gate (requires a churn baseline)")
	flagAggCurrent  = flag.String("aggcurrent", "", "JSON-lines file from cmd/aggbench -json for the windowed-aggregation gate (requires an agg baseline)")
	flagTol         = flag.Float64("tol", 0.02, "relative tolerance before a drift counts as a regression")
	flagWallTol     = flag.Float64("walltol", 1.0, "relative tolerance for consolidation wall clock (0 disables the wall-clock gate)")
	flagThrTol      = flag.Float64("thrtol", 0.5, "relative tolerance for per-record throughput (0 disables the throughput gate)")
	flagMinScale    = flag.Float64("minscale", 1.4, "minimum top-worker/1-worker throughput ratio when the host has the CPUs for it (0 disables the scaling gate)")
	flagAdmitGain   = flag.Float64("admitgain", 5, "minimum from-scratch-rebuild / sharded-admission-p99 ratio (0 disables the admission gate)")
	flagShardThr    = flag.Float64("shardthr", 0.9, "minimum sharded/global whole-pass throughput ratio in the churn duel (0 disables)")
	flagAggMin      = flag.Float64("aggmin", 2, "minimum merged-vs-replay abstract cost reduction for windowed aggregation (0 disables)")
)

// baselineFile is the subset of the trajectory file benchguard reads;
// extra fields (wall-clock records, provenance) are ignored. Latency, when
// present, holds the cmd/latency -json baseline for the throughput gate.
type baselineFile struct {
	Summaries []bench.Summary       `json:"summaries"`
	Latency   *bench.LatencySummary `json:"latency"`
	// LatencyFiltered is the cmd/latency -selectivity baseline: the same
	// configuration as Latency but with the queries gated on a cheap
	// record field, exercising the admission pre-filter's fast path.
	LatencyFiltered *bench.LatencySummary `json:"latency_filtered"`
	// LatencyScaling is the cmd/latency -scaling baseline: the batched
	// dispatch's throughput trajectory across worker counts, with the CPUs
	// of the recording host.
	LatencyScaling *bench.LatencySummary `json:"latency_scaling"`
	// Churn is the cmd/live -sharded -json baseline: the similarity-sharded
	// registry's admission-latency and throughput-duel trajectory point.
	Churn *bench.ChurnSummary `json:"churn"`
	// Agg is the cmd/aggbench -json baseline: one summary per windowed-
	// aggregation workload, keyed by (domain, keyed, num_aggs, window).
	Agg []bench.AggSummary `json:"agg"`
}

func key(s bench.Summary) string {
	return fmt.Sprintf("%s/%s/n=%d", s.Domain, s.Family, s.NumUDFs)
}

func readCurrent(paths string) (map[string]bench.Summary, error) {
	out := map[string]bench.Summary{}
	for _, p := range strings.Split(paths, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var s bench.Summary
			if err := json.Unmarshal([]byte(line), &s); err != nil {
				f.Close()
				return nil, fmt.Errorf("%s: %w", p, err)
			}
			out[key(s)] = s
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
	}
	return out, nil
}

func main() {
	flag.Parse()
	if *flagCurrent == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*flagBaseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *flagBaseline, err)
		os.Exit(2)
	}
	if len(base.Summaries) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s has no summaries to guard\n", *flagBaseline)
		os.Exit(2)
	}
	cur, err := readCurrent(*flagCurrent)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}

	tol := *flagTol
	failures := 0
	failf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "FAIL "+format+"\n", args...)
		failures++
	}
	for _, b := range base.Summaries {
		k := key(b)
		c, ok := cur[k]
		if !ok {
			failf("%s: missing from the current run (did the smoke flags change?)", k)
			continue
		}
		if !c.Agree {
			failf("%s: consolidated and sequential operators disagree", k)
		}
		if c.CostSpeedup < b.CostSpeedup*(1-tol) {
			failf("%s: cost_speedup %.4f regressed below baseline %.4f", k, c.CostSpeedup, b.CostSpeedup)
		}
		if float64(c.MergedSize) > float64(b.MergedSize)*(1+tol) {
			failf("%s: merged_size %d inflated beyond baseline %d", k, c.MergedSize, b.MergedSize)
		}
		if float64(c.SMTQueries) > float64(b.SMTQueries)*(1+tol) {
			failf("%s: smt_queries %d grew beyond baseline %d", k, c.SMTQueries, b.SMTQueries)
		}
		if wt := *flagWallTol; wt > 0 && b.ConsolidateMS > 0 && c.ConsolidateMS > b.ConsolidateMS*(1+wt) {
			failf("%s: consolidation wall clock %.1fms blew past baseline %.1fms (+%.0f%% allowed)",
				k, c.ConsolidateMS, b.ConsolidateMS, wt*100)
		}
		fmt.Printf("ok   %s: cost_speedup %.4f (baseline %.4f), merged_size %d, smt_queries %d\n",
			k, c.CostSpeedup, b.CostSpeedup, c.MergedSize, c.SMTQueries)
	}
	if *flagLatCurrent != "" {
		gateLatency(*flagLatCurrent, base.Latency, "latency", false, failf)
	}
	if *flagLatFiltered != "" {
		gateLatency(*flagLatFiltered, base.LatencyFiltered, "latency_filtered", true, failf)
	}
	if *flagLatScaling != "" {
		gateScaling(*flagLatScaling, base.LatencyScaling, failf)
	}
	if *flagChurn != "" {
		gateChurn(*flagChurn, base.Churn, failf)
	}
	if *flagAggCurrent != "" {
		gateAgg(*flagAggCurrent, base.Agg, failf)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d regression(s) vs %s\n", failures, *flagBaseline)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d configuration(s) within %.0f%% of %s\n", len(base.Summaries), tol*100, *flagBaseline)
}

// gateLatency holds one cmd/latency -json run to its baseline object:
// operator agreement always, the loose per-record throughput bound when
// -thrtol is on, and — for the pre-filtered configuration — the
// structural guard checks (non-trivial, actually rejecting), which are
// machine-independent.
func gateLatency(path string, b *bench.LatencySummary, kind string, filtered bool, failf func(string, ...any)) {
	if b == nil {
		failf("baseline has no %q object for this gate", kind)
		return
	}
	cur, err := readLatency(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	k := fmt.Sprintf("%s/%s/n=%d (%s)", b.Domain, b.Family, b.NumUDFs, kind)
	if !cur.Agree {
		failf("%s: consolidated and sequential operators disagree", k)
	}
	if filtered {
		if cur.GuardTrivial {
			failf("%s: admission guard degraded to trivial — predicate pushdown is gone", k)
		}
		if cur.Rejected == 0 {
			failf("%s: guard rejected no records on a %.2f%%-selectivity workload", k, cur.Selectivity*100)
		}
	}
	if tt := *flagThrTol; tt > 0 && b.ConsRecordsPerSec > 0 && cur.ConsRecordsPerSec < b.ConsRecordsPerSec*(1-tt) {
		failf("%s: consolidated throughput %.0f rec/s fell below baseline %.0f rec/s (−%.0f%% allowed)",
			k, cur.ConsRecordsPerSec, b.ConsRecordsPerSec, tt*100)
	} else {
		fmt.Printf("ok   %s: cons throughput %.0f rec/s (baseline %.0f rec/s)\n",
			k, cur.ConsRecordsPerSec, b.ConsRecordsPerSec)
	}
}

// gateScaling holds one cmd/latency -scaling -json run to the baseline
// trajectory. The only machine-independent claim multi-core dispatch makes
// is relative: adding workers must not be pure overhead when the host has
// the cores to show it. So the gate computes the current run's
// top-worker/1-worker throughput ratio and requires it ≥ -minscale, but
// only when min(top workers, current CPUs) can express that ratio at all;
// otherwise it logs the measured trajectory and passes. Absolute
// records/sec are never compared across files — both ends of the ratio
// come from the same run on the same host.
func gateScaling(path string, b *bench.LatencySummary, failf func(string, ...any)) {
	if b == nil {
		failf(`baseline has no "latency_scaling" object for this gate`)
		return
	}
	cur, err := readLatency(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	k := fmt.Sprintf("%s/%s/n=%d (latency_scaling)", cur.Domain, cur.Family, cur.NumUDFs)
	if len(cur.Scaling) < 2 {
		failf("%s: scaling run has %d points, need at least workers=1 and one parallel count", k, len(cur.Scaling))
		return
	}
	var base, top bench.ScalingPoint
	for _, pt := range cur.Scaling {
		if pt.Workers == 1 {
			base = pt
		}
		if pt.Workers > top.Workers {
			top = pt
		}
	}
	if base.Workers != 1 || base.RecordsPerSec <= 0 {
		failf("%s: scaling run has no usable workers=1 point", k)
		return
	}
	ratio := top.RecordsPerSec / base.RecordsPerSec
	ms := *flagMinScale
	attainable := float64(top.Workers)
	if cur.CPUs > 0 && float64(cur.CPUs) < attainable {
		attainable = float64(cur.CPUs)
	}
	switch {
	case ms <= 0:
		fmt.Printf("ok   %s: scaling gate disabled; measured %.2fx at %d workers\n", k, ratio, top.Workers)
	case attainable < ms:
		fmt.Printf("ok   %s: host has %d CPU(s), cannot attain %.2fx; measured %.2fx at %d workers (informational)\n",
			k, cur.CPUs, ms, ratio, top.Workers)
	case ratio < ms:
		failf("%s: %d-worker throughput is only %.2fx the 1-worker pass on a %d-CPU host (need ≥ %.2fx)",
			k, top.Workers, ratio, cur.CPUs, ms)
	default:
		fmt.Printf("ok   %s: %.2fx at %d workers on %d CPU(s) (baseline recorded %.2fx on %d CPU(s))\n",
			k, ratio, top.Workers, cur.CPUs, baselineRatio(b), b.CPUs)
	}
}

// baselineRatio extracts the baseline trajectory's own top/1 ratio for the
// log line; zero when the baseline is malformed.
func baselineRatio(b *bench.LatencySummary) float64 {
	var base, top bench.ScalingPoint
	for _, pt := range b.Scaling {
		if pt.Workers == 1 {
			base = pt
		}
		if pt.Workers > top.Workers {
			top = pt
		}
	}
	if base.RecordsPerSec <= 0 {
		return 0
	}
	return top.RecordsPerSec / base.RecordsPerSec
}

// gateChurn holds one cmd/live -sharded -json run to the sharded
// registry's contract. Like gateScaling, it never compares absolute wall
// clock across files — both ends of each gated ratio come from the same
// run on the same host. The baseline object's role is to exist (opting the
// gate in) and to anchor the log line.
//
// admit_gain is a sound lower bound by construction: the from-scratch
// rebuild is priced at baseline_n, far below the sharded registry's n, and
// from-scratch consolidation cost only grows with the live-set size.
func gateChurn(path string, b *bench.ChurnSummary, failf func(string, ...any)) {
	if b == nil {
		failf(`baseline has no "churn" object for this gate`)
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var cur bench.ChurnSummary
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(raw))), &cur); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", path, err)
		os.Exit(2)
	}
	k := fmt.Sprintf("%s/%s/n=%d (churn)", cur.Domain, cur.Family, cur.N)
	if !cur.Agree {
		failf("%s: sharded and global notification sets disagree (or a rebuild left a dirty snapshot)", k)
	}
	if cur.Clusters < 2 {
		failf("%s: registry collapsed to %d cluster(s) — similarity sharding is not engaging", k, cur.Clusters)
	}
	if mg := *flagAdmitGain; mg > 0 {
		if cur.AdmitGain < mg {
			failf("%s: admission p99 %.0fµs is only %.1fx below the %.1fms from-scratch rebuild at n=%d (need ≥ %.0fx)",
				k, cur.AdmitP99Micros, cur.AdmitGain, cur.BaselineRebuildMS, cur.BaselineN, mg)
		} else {
			fmt.Printf("ok   %s: admission p99 %.0fµs, %.0fx below the n=%d from-scratch rebuild (baseline recorded %.0fx)\n",
				k, cur.AdmitP99Micros, cur.AdmitGain, cur.BaselineN, b.AdmitGain)
		}
	}
	if st := *flagShardThr; st > 0 {
		if cur.GlobalRecordsPerSec <= 0 {
			failf("%s: duel has no usable global throughput", k)
		} else if ratio := cur.ShardedRecordsPerSec / cur.GlobalRecordsPerSec; ratio < st {
			failf("%s: sharded pass runs at %.2fx the global merged program on the n=%d duel (need ≥ %.2fx)",
				k, ratio, cur.ThroughputN, st)
		} else {
			fmt.Printf("ok   %s: sharded duel throughput %.2fx of global at n=%d (baseline recorded %.2fx)\n",
				k, ratio, cur.ThroughputN, safeRatio(b.ShardedRecordsPerSec, b.GlobalRecordsPerSec))
		}
	}
}

// gateAgg holds one cmd/aggbench -json run to the windowed-aggregation
// contract. The gated quantity — abstract UDF cost of the per-aggregation
// replay over the merged shared traversal, Figure 2 weights — is
// deterministic for a fixed workload configuration, so the gate is
// machine-independent: the reduction must reach -aggmin (2x by default)
// AND must not drop below the committed baseline's reduction by more than
// -tol. The run must also report byte-identical windowed outputs, and
// every workload the baseline marks homomorphic must still verify so (a
// lost split silently degrades the parallel path, never correctness —
// which is exactly why it needs a gate).
func gateAgg(path string, base []bench.AggSummary, failf func(string, ...any)) {
	if len(base) == 0 {
		failf(`baseline has no "agg" array for this gate`)
		return
	}
	cur, err := readAgg(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	for _, b := range base {
		k := aggKey(b)
		c, ok := cur[k]
		if !ok {
			failf("%s: missing from the current aggbench run (did the smoke flags change?)", k)
			continue
		}
		if !c.Agree {
			failf("%s: merged windowed outputs diverge from the per-aggregation replay", k)
		}
		if b.HomGroups == b.Groups && c.HomGroups < c.Groups {
			failf("%s: only %d of %d groups verified homomorphic (baseline had all %d) — the partial/combine split disengaged",
				k, c.HomGroups, c.Groups, b.Groups)
		}
		if mn := *flagAggMin; mn > 0 && c.CostReduction < mn {
			failf("%s: cost_reduction %.4f is below the %.1fx shared-traversal floor", k, c.CostReduction, mn)
		}
		if c.CostReduction < b.CostReduction*(1-*flagTol) {
			failf("%s: cost_reduction %.4f regressed below baseline %.4f", k, c.CostReduction, b.CostReduction)
		} else {
			fmt.Printf("ok   %s: cost_reduction %.4f (baseline %.4f), %d/%d hom groups\n",
				k, c.CostReduction, b.CostReduction, c.HomGroups, c.Groups)
		}
	}
}

func aggKey(s bench.AggSummary) string {
	part := "count"
	if s.Keyed {
		part = "keyed"
	}
	return fmt.Sprintf("%s/%s/n=%d/win=%d (agg)", s.Domain, part, s.NumAggs, s.Window)
}

// readAgg parses one cmd/aggbench -json output (JSON lines).
func readAgg(path string) (map[string]bench.AggSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]bench.AggSummary{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var s bench.AggSummary
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out[aggKey(s)] = s
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// safeRatio is a/b guarding the baseline log line against a zero divisor.
func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// readLatency parses one cmd/latency -json output object.
func readLatency(path string) (*bench.LatencySummary, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s bench.LatencySummary
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(raw))), &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}
