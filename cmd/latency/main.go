// Command latency runs the latency extension experiment motivated by the
// paper's Section 8: program consolidation optimises overall completion
// time, and because results are broadcast as soon as they are computed
// (the notify primitive), per-query latency usually improves too — but not
// uniformly: a query that ran first under sequential execution may now
// wait for shared computation scheduled before its notification.
//
// The tool prints, for each query position, the mean notification latency
// (in abstract cost units per record) under whereMany and under
// whereConsolidated.
//
// With -json the tool instead emits one bench.LatencySummary object: the
// per-record execution throughput of both operators (records divided by
// wall time inside UDF evaluation) plus the latency headline — the input
// to benchguard's throughput regression gate.
//
// With -selectivity s < 1 the generated queries are gated on a cheap
// record field (twitter's followerCount) so that only an s-fraction of
// records can notify at all; this is the workload where the engine's
// SMT-synthesized admission pre-filter pays off, and the summary then
// reports the guard's admitted/rejected counts next to the throughputs.
//
// Usage:
//
// With -scaling the tool instead sweeps the batched engine dispatch across
// worker counts: the consolidated operator runs -reps times per count over
// the same dataset and merged program (consolidation verdicts shared
// through one SMT cache), and the summary's scaling trajectory records the
// best whole-pass throughput (records over wall clock) at each count —
// the input to benchguard's multi-core scaling gate.
//
// Usage:
//
//	latency [-domain twitter] [-family Q2] [-n 10] [-scale 0.02] [-seed 1] [-selectivity 0.01] [-json]
//	latency -scaling 1,2,4,8 [-reps 5] [-batch 256] -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"consolidation/internal/bench"
	"consolidation/internal/consolidate"
	"consolidation/internal/engine"
	"consolidation/internal/lang"
	"consolidation/internal/queries"
	"consolidation/internal/smt"
)

var (
	flagDomain  = flag.String("domain", "twitter", "dataset domain")
	flagFamily  = flag.String("family", "Q2", "query family")
	flagN       = flag.Int("n", 10, "number of queries")
	flagScale   = flag.Float64("scale", 0.02, "dataset scale")
	flagSeed    = flag.Int64("seed", 1, "workload seed")
	flagSel     = flag.Float64("selectivity", 1, "gate queries on a cheap record field so ~this fraction of records can notify (1 = ungated)")
	flagJSON    = flag.Bool("json", false, "emit a bench.LatencySummary object instead of the table")
	flagWorkers = flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	flagBatch   = flag.Int("batch", 0, "records per dispatched batch (0 = engine default)")
	flagScaling = flag.String("scaling", "", "comma-separated worker counts; sweep the consolidated pass across them instead of the latency report")
	flagReps    = flag.Int("reps", 3, "repetitions per scaling point (best throughput wins)")
)

func main() {
	flag.Parse()
	ds, err := bench.Dataset(*flagDomain, *flagScale, *flagSeed)
	if err != nil {
		fatal(err)
	}
	udfs, err := queries.Gen(*flagDomain, *flagFamily, *flagN, 100+*flagSeed)
	if err != nil {
		fatal(err)
	}
	if *flagSel < 1 {
		if *flagSel <= 0 {
			fatal(fmt.Errorf("-selectivity must be in (0, 1]"))
		}
		q, ok := ds.(interface{ FollowerQuantile(p float64) int64 })
		if !ok {
			fatal(fmt.Errorf("domain %q has no cheap gating field; -selectivity supports twitter", *flagDomain))
		}
		udfs = queries.Selective(udfs, "followerCount", q.FollowerQuantile, *flagSel, 100+*flagSeed)
	}
	copts := consolidate.DefaultOptions()
	copts.FuncCoster = ds
	// Share one SMT query cache across the pairwise merges so the report
	// below can show how much of the entailment work the cache absorbed.
	copts.Cache = smt.NewCache(0)
	if *flagScaling != "" {
		runScaling(ds, udfs, copts)
		return
	}
	eopts := engine.Options{Workers: *flagWorkers, BatchSize: *flagBatch}
	many, err := engine.WhereMany(ds, udfs, eopts)
	if err != nil {
		fatal(err)
	}
	cons, err := engine.WhereConsolidated(ds, udfs, copts, eopts)
	if err != nil {
		fatal(err)
	}
	agree := engine.SameResults(many, &cons.Result)
	if !agree && !*flagJSON {
		fatal(fmt.Errorf("operators disagree"))
	}

	var worse int
	for q := 0; q < *flagN; q++ {
		if cons.MeanLatency(q) > many.MeanLatency(q) {
			worse++
		}
	}

	trivial := cons.Guard == nil || cons.Guard.Trivial
	measured := 1.0
	if n := cons.Metrics.Admitted + cons.Metrics.Rejected; n > 0 {
		measured = float64(cons.Metrics.Admitted) / float64(n)
	}

	if *flagJSON {
		s := bench.LatencySummary{
			Domain:            *flagDomain,
			Family:            *flagFamily,
			NumUDFs:           *flagN,
			Records:           cons.Records,
			Workers:           *flagWorkers,
			BatchSize:         *flagBatch,
			CPUs:              runtime.GOMAXPROCS(0),
			ManyRecordsPerSec: recPerSec(many.Records, many.UDFTime),
			ConsRecordsPerSec: recPerSec(cons.Records, cons.UDFTime),
			ManyUDFMillis:     float64(many.UDFTime) / float64(time.Millisecond),
			ConsUDFMillis:     float64(cons.UDFTime) / float64(time.Millisecond),
			WorseQueries:      worse,

			Selectivity:         *flagSel,
			Admitted:            cons.Metrics.Admitted,
			Rejected:            cons.Metrics.Rejected,
			MeasuredSelectivity: measured,
			GuardTrivial:        trivial,
			GuardCost:           cons.Metrics.GuardCost,
			PrefilterMS:         float64(cons.PrefilterTime) / float64(time.Millisecond),

			Agree: agree,
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(s); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("mean notification latency per record (cost units), %s/%s, %d queries\n\n",
		*flagDomain, *flagFamily, *flagN)
	fmt.Printf("%6s %14s %16s %9s\n", "query", "whereMany", "whereConsolidated", "ratio")
	for q := 0; q < *flagN; q++ {
		m := many.MeanLatency(q)
		c := cons.MeanLatency(q)
		ratio := 0.0
		if c > 0 {
			ratio = m / c
		}
		mark := ""
		if c > m {
			mark = "  (slower)"
		}
		fmt.Printf("%6d %14.1f %16.1f %8.1fx%s\n", q, m, c, ratio, mark)
	}
	fmt.Printf("\nqueries with increased latency: %d of %d\n", worse, *flagN)
	fmt.Println("completion (max over queries):",
		fmt.Sprintf("whereMany %.1f, whereConsolidated %.1f", maxLat(&many.Metrics), maxLat(&cons.Metrics)))
	if trivial {
		fmt.Println("pre-filter: trivial guard (stage skipped)")
	} else {
		fmt.Printf("pre-filter: admitted %d / rejected %d (measured selectivity %.2f%%), guard cost %d, synthesis %s\n",
			cons.Metrics.Admitted, cons.Metrics.Rejected, measured*100,
			cons.Guard.Cost, cons.PrefilterTime.Round(time.Microsecond))
	}
	cs := cons.Multi.Cache
	fmt.Printf("SMT cache: %d queries, hit-rate %.1f%% (%d/%d lookups), %d entries, %d evictions\n",
		cons.Multi.SMTQueries, cons.Multi.CacheHitRate()*100,
		cs.Hits, cs.Lookups, cs.Entries, cs.Evictions)
}

// runScaling sweeps the batched consolidated pass across the -scaling
// worker counts and emits (or prints) the throughput trajectory. The
// scaling metric is whole-pass wall clock — summed UDF time grows with
// workers by construction — and each point keeps the best of -reps runs,
// since the floor of a noisy sample set, not its mean, is what dispatch
// overhead bounds. The consolidation and pre-filter SMT caches are shared
// across every run, so only the first pass pays synthesis.
func runScaling(ds engine.RecordLibrary, udfs []*lang.Program, copts consolidate.Options) {
	counts, err := parseCounts(*flagScaling)
	if err != nil {
		fatal(err)
	}
	reps := *flagReps
	if reps < 1 {
		reps = 1
	}
	pcache := smt.NewCache(0)
	s := bench.LatencySummary{
		Domain:    *flagDomain,
		Family:    *flagFamily,
		NumUDFs:   *flagN,
		BatchSize: *flagBatch,
		CPUs:      runtime.GOMAXPROCS(0),
	}
	for _, w := range counts {
		eopts := engine.Options{Workers: w, BatchSize: *flagBatch, PrefilterCache: pcache}
		best := 0.0
		for r := 0; r < reps; r++ {
			cons, err := engine.WhereConsolidated(ds, udfs, copts, eopts)
			if err != nil {
				fatal(err)
			}
			s.Records = cons.Records
			if cons.TotalTime > 0 {
				if tput := float64(cons.Records) / cons.TotalTime.Seconds(); tput > best {
					best = tput
				}
			}
		}
		s.Scaling = append(s.Scaling, bench.ScalingPoint{Workers: w, RecordsPerSec: best})
	}
	if *flagJSON {
		if err := json.NewEncoder(os.Stdout).Encode(s); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("consolidated whole-pass throughput, %s/%s, %d queries, %d records, %d CPUs (best of %d)\n\n",
		s.Domain, s.Family, s.NumUDFs, s.Records, s.CPUs, reps)
	base := 0.0
	for _, pt := range s.Scaling {
		if base == 0 {
			base = pt.RecordsPerSec
		}
		speedup := 0.0
		if base > 0 {
			speedup = pt.RecordsPerSec / base
		}
		fmt.Printf("workers=%-3d %12.0f records/sec  %5.2fx\n", pt.Workers, pt.RecordsPerSec, speedup)
	}
}

// parseCounts parses a comma-separated list of positive worker counts.
func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("-scaling: bad worker count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-scaling: no worker counts")
	}
	return out, nil
}

// recPerSec converts a record count and the wall time spent inside UDF
// evaluation into per-record throughput; zero when the interval is too
// short to measure.
func recPerSec(records int, udf time.Duration) float64 {
	if udf <= 0 {
		return 0
	}
	return float64(records) / udf.Seconds()
}

func maxLat(m *engine.Metrics) float64 {
	best := 0.0
	for q := 0; q < m.UDFs; q++ {
		if l := m.MeanLatency(q); l > best {
			best = l
		}
	}
	return best
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "latency:", err)
	os.Exit(1)
}
