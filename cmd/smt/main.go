// Command smt is an SMT-LIB v2 front end for the repository's QF_UFLIA
// solver — the same solver that discharges the consolidation calculus's
// entailment queries. Useful for debugging a consolidation decision by
// replaying its query by hand.
//
// Usage:
//
//	smt file.smt2         execute a script
//	smt -                 read a script from stdin
//	echo '(check-sat)' | smt
package main

import (
	"fmt"
	"io"
	"os"

	"consolidation/internal/smtlib"
)

func main() {
	var src []byte
	var err error
	switch {
	case len(os.Args) < 2 || os.Args[1] == "-":
		src, err = io.ReadAll(os.Stdin)
	default:
		src, err = os.ReadFile(os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smt:", err)
		os.Exit(1)
	}
	out, rerr := smtlib.New().Run(string(src))
	fmt.Print(out)
	if rerr != nil {
		fmt.Fprintln(os.Stderr, "smt:", rerr)
		os.Exit(1)
	}
}
