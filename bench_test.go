// Benchmarks regenerating the paper's evaluation (Section 6.3): one
// benchmark per Figure 9 bar pair (domain × query family) and per Figure 10
// sweep point, plus micro-benchmarks for the substrates (SMT entailment,
// interpretation, pairwise consolidation).
//
// Figure 9/10 benchmarks report, via custom metrics:
//
//	udf-speedup    whereMany UDF time / whereConsolidated UDF time
//	cost-speedup   the same ratio in engine-independent cost units
//	total-speedup  total job time incl. consolidation
//	consolidate-ms compile time for the UDF batch
//
// Dataset scales are small (speedups are per-record ratios and do not
// depend on dataset size); cmd/figure9 and cmd/figure10 run larger
// configurations.
package consolidation_test

import (
	"testing"

	"consolidation"
	"consolidation/internal/bench"
	"consolidation/internal/consolidate"
	"consolidation/internal/engine"
	"consolidation/internal/lang"
	"consolidation/internal/logic"
	"consolidation/internal/queries"
	"consolidation/internal/smt"
)

func benchFigure9(b *testing.B, domain, family string) {
	b.ReportAllocs()
	var last *bench.Outcome
	for i := 0; i < b.N; i++ {
		o, err := bench.Run(bench.Config{
			Domain: domain, Family: family, NumUDFs: 20, Scale: 0.01, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !o.Agree {
			b.Fatal("operators disagree")
		}
		last = o
	}
	b.ReportMetric(last.UDFSpeedup(), "udf-speedup")
	b.ReportMetric(last.CostSpeedup(), "cost-speedup")
	b.ReportMetric(last.TotalSpeedup(), "total-speedup")
	b.ReportMetric(float64(last.Consolidate.Milliseconds()), "consolidate-ms")
}

// Figure 9 — Weather.
func BenchmarkFigure9WeatherQ1(b *testing.B)  { benchFigure9(b, "weather", "Q1") }
func BenchmarkFigure9WeatherQ2(b *testing.B)  { benchFigure9(b, "weather", "Q2") }
func BenchmarkFigure9WeatherQ3(b *testing.B)  { benchFigure9(b, "weather", "Q3") }
func BenchmarkFigure9WeatherQ4(b *testing.B)  { benchFigure9(b, "weather", "Q4") }
func BenchmarkFigure9WeatherMix(b *testing.B) { benchFigure9(b, "weather", "Mix") }

// Figure 9 — Flight.
func BenchmarkFigure9FlightQ1(b *testing.B)  { benchFigure9(b, "flight", "Q1") }
func BenchmarkFigure9FlightQ2(b *testing.B)  { benchFigure9(b, "flight", "Q2") }
func BenchmarkFigure9FlightQ3(b *testing.B)  { benchFigure9(b, "flight", "Q3") }
func BenchmarkFigure9FlightMix(b *testing.B) { benchFigure9(b, "flight", "Mix") }

// Figure 9 — News.
func BenchmarkFigure9NewsQ1(b *testing.B) { benchFigure9(b, "news", "Q1") }
func BenchmarkFigure9NewsQ2(b *testing.B) { benchFigure9(b, "news", "Q2") }
func BenchmarkFigure9NewsQ3(b *testing.B) { benchFigure9(b, "news", "Q3") }
func BenchmarkFigure9NewsBC(b *testing.B) { benchFigure9(b, "news", "BC") }

// Figure 9 — Twitter.
func BenchmarkFigure9TwitterQ1(b *testing.B) { benchFigure9(b, "twitter", "Q1") }
func BenchmarkFigure9TwitterQ2(b *testing.B) { benchFigure9(b, "twitter", "Q2") }
func BenchmarkFigure9TwitterQ3(b *testing.B) { benchFigure9(b, "twitter", "Q3") }
func BenchmarkFigure9TwitterBC(b *testing.B) { benchFigure9(b, "twitter", "BC") }

// Figure 9 — Stock.
func BenchmarkFigure9StockQ1(b *testing.B) { benchFigure9(b, "stock", "Q1") }
func BenchmarkFigure9StockQ2(b *testing.B) { benchFigure9(b, "stock", "Q2") }
func BenchmarkFigure9StockQ3(b *testing.B) { benchFigure9(b, "stock", "Q3") }
func BenchmarkFigure9StockBC(b *testing.B) { benchFigure9(b, "stock", "BC") }

// Figure 10 — scalability with the number of UDFs (News Mix workload).
func benchFigure10(b *testing.B, n int) {
	var last *bench.Outcome
	for i := 0; i < b.N; i++ {
		o, err := bench.Run(bench.Config{
			Domain: "news", Family: "Mix", NumUDFs: n, Scale: 0.005, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !o.Agree {
			b.Fatal("operators disagree")
		}
		last = o
	}
	b.ReportMetric(float64(last.ManyUDFTime.Microseconds()), "many-udf-µs")
	b.ReportMetric(float64(last.ConsUDFTime.Microseconds()), "cons-udf-µs")
	b.ReportMetric(float64(last.Consolidate.Milliseconds()), "consolidate-ms")
}

func BenchmarkFigure10N10(b *testing.B)  { benchFigure10(b, 10) }
func BenchmarkFigure10N25(b *testing.B)  { benchFigure10(b, 25) }
func BenchmarkFigure10N50(b *testing.B)  { benchFigure10(b, 50) }
func BenchmarkFigure10N100(b *testing.B) { benchFigure10(b, 100) }

// BenchmarkConsolidate50UDFs measures consolidation (compile) time alone
// for a 50-UDF batch — the paper reports ≈0.3 s with sub-second behaviour
// up to 300 UDFs.
func BenchmarkConsolidate50UDFs(b *testing.B) {
	progs := queries.MustGen("weather", "Mix", 50, 7)
	opts := consolidate.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := consolidate.All(progs, opts, true, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConsolidatePair measures one pairwise merge of the paper's
// Section 2 example.
func BenchmarkConsolidatePair(b *testing.B) {
	f1 := consolidation.MustParse(`
func f1(fi) {
  name := airlineName(fi);
  if (name == 1) { notify 1 true; } else { notify 1 (name == 2); }
}`)
	f2 := consolidation.MustParse(`
func f2(fi) {
  if (price(fi) >= 200) { notify 2 false; }
  else { notify 2 (airlineName(fi) == 1); }
}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := consolidation.Consolidate(f1, f2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMTEntailment measures the solver on a representative
// consolidation query (memoization with arithmetic).
func BenchmarkSMTEntailment(b *testing.B) {
	hyp := logic.And(
		logic.EqT(logic.V("x"), logic.TApp{Func: "f", Args: []logic.Term{logic.V("a")}}),
		logic.EqT(logic.V("y"), logic.TBin{Op: logic.Add, L: logic.V("x"), R: logic.Num(1)}),
		logic.Atom(logic.Lt, logic.Num(0), logic.V("a")),
	)
	goal := logic.EqT(
		logic.TBin{Op: logic.Sub, L: logic.V("y"), R: logic.Num(1)},
		logic.TApp{Func: "f", Args: []logic.Term{logic.V("a")}},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := smt.New() // fresh solver: no cache, measure raw solving
		if !s.Entails(hyp, goal) {
			b.Fatal("entailment should hold")
		}
	}
}

// BenchmarkInterpreter measures raw UDF evaluation throughput.
func BenchmarkInterpreter(b *testing.B) {
	p := lang.MustParse(`
func q(r) {
  n := 12;
  i := 0;
  s := 0;
  while (i < n) { s := s + f(r, i); i := i + 1; }
  notify 1 (s > 100);
}`)
	lib := &lang.MapLibrary{}
	lib.Define("f", 10, func(a []int64) (int64, error) { return a[0] + a[1], nil })
	in := lang.NewInterp(lib)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Run(p, []int64{int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures parser throughput on generated query text.
func BenchmarkParse(b *testing.B) {
	progs := queries.MustGen("stock", "Q3", 1, 3)
	src := lang.Format(progs[0])
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lang.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations: the design choices DESIGN.md calls out ----

// ablationOutcome consolidates a weather mix and evaluates the merged
// program's cost on the dataset, under the given options.
func ablationOutcome(b *testing.B, opts consolidate.Options) (int64, int) {
	b.Helper()
	ds, err := bench.Dataset("weather", 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	if opts.FuncCoster == nil {
		opts.FuncCoster = ds
	}
	udfs := queries.MustGen("weather", "Mix", 20, 5)
	cons, err := engine.WhereConsolidated(ds, udfs, opts, engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return cons.UDFCost, cons.Multi.OutputSize
}

// BenchmarkAblationDCE compares consolidation with and without the
// dead-store elimination extension: same selected records, lower cost and
// smaller programs with DCE on.
func BenchmarkAblationDCE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := consolidate.DefaultOptions()
		costOn, sizeOn := ablationOutcome(b, on)
		off := consolidate.DefaultOptions()
		off.NoDCE = true
		costOff, sizeOff := ablationOutcome(b, off)
		if costOn > costOff {
			b.Fatalf("DCE increased cost: %d > %d", costOn, costOff)
		}
		b.ReportMetric(float64(costOff)/float64(costOn), "cost-ratio-off/on")
		b.ReportMetric(float64(sizeOff)/float64(sizeOn), "size-ratio-off/on")
	}
}

// BenchmarkAblationEmbedding compares the paper's cross-embedding (If 3/4)
// against If 5 only (MaxEmbedSize too small to ever embed): embedding costs
// program size but buys redundant-test elimination.
func BenchmarkAblationEmbedding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := consolidate.DefaultOptions()
		costFull, sizeFull := ablationOutcome(b, full)
		none := consolidate.DefaultOptions()
		none.MaxEmbedSize = 1
		costNone, sizeNone := ablationOutcome(b, none)
		if costFull > costNone {
			b.Fatalf("embedding made execution costlier: %d > %d", costFull, costNone)
		}
		b.ReportMetric(float64(costNone)/float64(costFull), "cost-ratio-noembed/embed")
		b.ReportMetric(float64(sizeFull)/float64(sizeNone), "size-ratio-embed/noembed")
	}
}
